package statedb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ReferenceStore is the pre-sharding state database: one RWMutex over one
// flat map, with range scans materialized and sorted under the lock. It is
// retained as the executable specification of state semantics — the oracle
// the sharded Store's property tests pin point/range/composite/pagination
// results against (exactly as committer.NewSerial pins the pipelined
// committer) — and as the single-lock baseline the state benchmark
// measures speedups over. Not for production use.
type ReferenceStore struct {
	mu     sync.RWMutex
	data   map[string]VersionedValue
	height Version
}

// NewReference creates an empty single-lock reference store.
func NewReference() *ReferenceStore {
	return &ReferenceStore{data: make(map[string]VersionedValue)}
}

// Get returns the committed value and version for key.
func (s *ReferenceStore) Get(key string) (VersionedValue, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vv, ok := s.data[key]
	return vv, ok
}

// GetVersion returns only the version for key.
func (s *ReferenceStore) GetVersion(key string) (Version, bool) {
	vv, ok := s.Get(key)
	return vv.Version, ok
}

// Height returns the version of the last applied update batch.
func (s *ReferenceStore) Height() Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.height
}

// Len returns the number of live keys (including composite keys).
func (s *ReferenceStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// ApplyUpdates applies the batch atomically under the global lock.
func (s *ReferenceStore) ApplyUpdates(batch *UpdateBatch, height Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if height.Compare(s.height) <= 0 && (s.height != Version{}) {
		return fmt.Errorf("%w: have %v, got %v", ErrStaleCommitHeight, s.height, height)
	}
	for key, w := range batch.writes {
		if w.delete {
			delete(s.data, key)
		} else {
			s.data[key] = VersionedValue{Value: w.value, Version: w.ver}
		}
	}
	s.height = height
	return nil
}

// GetRange materializes and sorts the matching entries under the read lock
// — the O(n) full-map walk the sharded store's ordered index replaces —
// then streams them from the frozen slice. Semantics match Store.GetRange:
// the composite-key namespace (keys prefixed with U+0000) is excluded.
func (s *ReferenceStore) GetRange(startKey, endKey string) Iterator {
	s.mu.RLock()
	out := make([]KV, 0, 16)
	for key, vv := range s.data {
		if strings.HasPrefix(key, compositeKeySep) {
			continue
		}
		if key < startKey {
			continue
		}
		if endKey != "" && key >= endKey {
			continue
		}
		out = append(out, KV{Key: key, Value: vv.Value, Version: vv.Version})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return &sliceIter{kvs: out}
}

// GetByPartialCompositeKey materializes matching composite entries under
// the read lock and streams them sorted.
func (s *ReferenceStore) GetByPartialCompositeKey(objectType string, attrs []string) (Iterator, error) {
	prefix, err := CreateCompositeKey(objectType, attrs)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	out := make([]KV, 0, 8)
	for key, vv := range s.data {
		if strings.HasPrefix(key, prefix) {
			out = append(out, KV{Key: key, Value: vv.Value, Version: vv.Version})
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return &sliceIter{kvs: out}, nil
}

// Snapshot deep-copies the whole map under the lock — the blocking O(n)
// capture the sharded store's O(1) copy-on-write snapshots replace.
func (s *ReferenceStore) Snapshot() Snapshot {
	return &frozenSnapshot{data: s.Export(), height: s.Height()}
}

// Export returns a deep copy of the live state as a flat map.
func (s *ReferenceStore) Export() map[string]VersionedValue {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]VersionedValue, len(s.data))
	for k, vv := range s.data {
		val := make([]byte, len(vv.Value))
		copy(val, vv.Value)
		out[k] = VersionedValue{Value: val, Version: vv.Version}
	}
	return out
}

// Restore replaces the live state with the given snapshot at the given
// height.
func (s *ReferenceStore) Restore(snap map[string]VersionedValue, height Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]VersionedValue, len(snap))
	for k, vv := range snap {
		val := make([]byte, len(vv.Value))
		copy(val, vv.Value)
		s.data[k] = VersionedValue{Value: val, Version: vv.Version}
	}
	s.height = height
}

// frozenSnapshot is a fully materialized snapshot: a deep copy frozen at
// creation, trivially consistent. The reference store and restored
// checkpoints use it.
type frozenSnapshot struct {
	data   map[string]VersionedValue
	height Version

	once sync.Once
	keys []string // all keys, sorted lazily on first iteration
}

func (sn *frozenSnapshot) sorted() []string {
	sn.once.Do(func() {
		sn.keys = make([]string, 0, len(sn.data))
		for k := range sn.data {
			sn.keys = append(sn.keys, k)
		}
		sort.Strings(sn.keys)
	})
	return sn.keys
}

func (sn *frozenSnapshot) Get(key string) (VersionedValue, bool) {
	vv, ok := sn.data[key]
	return vv, ok
}

func (sn *frozenSnapshot) GetVersion(key string) (Version, bool) {
	vv, ok := sn.data[key]
	return vv.Version, ok
}

func (sn *frozenSnapshot) Height() Version { return sn.height }

func (sn *frozenSnapshot) Len() int { return len(sn.data) }

func (sn *frozenSnapshot) GetRange(startKey, endKey string) Iterator {
	var out []KV
	for _, k := range sn.sorted() {
		if strings.HasPrefix(k, compositeKeySep) || k < startKey {
			continue
		}
		if endKey != "" && k >= endKey {
			break
		}
		vv := sn.data[k]
		out = append(out, KV{Key: k, Value: vv.Value, Version: vv.Version})
	}
	return &sliceIter{kvs: out}
}

func (sn *frozenSnapshot) GetByPartialCompositeKey(objectType string, attrs []string) (Iterator, error) {
	prefix, err := CreateCompositeKey(objectType, attrs)
	if err != nil {
		return nil, err
	}
	var out []KV
	for _, k := range sn.sorted() {
		if strings.HasPrefix(k, prefix) {
			vv := sn.data[k]
			out = append(out, KV{Key: k, Value: vv.Value, Version: vv.Version})
		}
	}
	return &sliceIter{kvs: out}, nil
}

func (sn *frozenSnapshot) All() Iterator {
	out := make([]KV, 0, len(sn.data))
	for _, k := range sn.sorted() {
		vv := sn.data[k]
		out = append(out, KV{Key: k, Value: vv.Value, Version: vv.Version})
	}
	return &sliceIter{kvs: out}
}

func (sn *frozenSnapshot) Materialize() map[string]VersionedValue {
	out := make(map[string]VersionedValue, len(sn.data))
	for k, vv := range sn.data {
		val := make([]byte, len(vv.Value))
		copy(val, vv.Value)
		out[k] = VersionedValue{Value: val, Version: vv.Version}
	}
	return out
}

func (sn *frozenSnapshot) Release() {}

// sliceIter streams a pre-materialized, already-sorted result set.
type sliceIter struct {
	kvs []KV
	pos int
}

func (it *sliceIter) Next() (KV, bool) {
	if it.pos >= len(it.kvs) {
		return KV{}, false
	}
	kv := it.kvs[it.pos]
	it.pos++
	return kv, true
}

func (it *sliceIter) Close() { it.kvs = nil }
