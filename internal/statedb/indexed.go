package statedb

import (
	"fmt"
	"strings"
	"sync"

	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/richquery"
)

// IndexedStore is the CouchDB-flavour state database: a versioned KV store
// that additionally decodes JSON document values, maintains declared
// secondary field indexes incrementally at commit time, and serves
// Mango-style rich queries through a planner that uses an index when the
// selector constrains an indexed field and falls back to a filtered scan
// otherwise. This is the component that makes HyperProv's provenance
// queries (by owner, by type, by time window) practical at scale, mirroring
// the paper's use of CouchDB rich queries on Hyperledger Fabric.
// The zero value is not usable; call NewIndexed.
type IndexedStore struct {
	// mu guards the secondary indexes only. Queries hold it just long
	// enough to plan and copy matching keys out of an index; candidate
	// documents are then streamed from a snapshot with no lock held, so a
	// long rich query no longer blocks ApplyUpdates (and vice versa). The
	// inner sharded Store synchronizes itself.
	mu      sync.RWMutex
	store   *Store
	indexes map[string]*richquery.Index // by index name
}

// NewIndexed creates an empty indexed state database with the given index
// definitions, sharded one stripe per available CPU.
func NewIndexed(defs ...richquery.IndexDef) (*IndexedStore, error) {
	return NewIndexedSharded(0, defs...)
}

// NewIndexedSharded is NewIndexed with an explicit shard count (<= 0 means
// GOMAXPROCS).
func NewIndexedSharded(shards int, defs ...richquery.IndexDef) (*IndexedStore, error) {
	s := &IndexedStore{store: NewSharded(shards), indexes: make(map[string]*richquery.Index)}
	for _, def := range defs {
		if err := s.DefineIndex(def); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// SetMetrics attaches per-operation state latency instrumentation to the
// underlying sharded store.
func (s *IndexedStore) SetMetrics(reg *metrics.Registry) { s.store.SetMetrics(reg) }

// DefineIndex declares a new index and builds it over existing state. It is
// how chaincode-shipped index declarations (Fabric's META-INF/statedb
// directory) land in the state database at install time. Redefining an
// existing name with the same field is a no-op; with a different field it
// is an error.
func (s *IndexedStore) DefineIndex(def richquery.IndexDef) error {
	return s.DefineIndexes([]richquery.IndexDef{def})
}

// DefineIndexes declares a set of indexes atomically: every definition is
// validated against the existing indexes (and the rest of the batch) before
// any is built, so a rejected chaincode install cannot leave a partial set
// of its indexes behind. Definitions that exactly match an existing index
// are skipped.
func (s *IndexedStore) DefineIndexes(defs []richquery.IndexDef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh := make([]richquery.IndexDef, 0, len(defs))
	inBatch := make(map[string]string, len(defs))
	for _, def := range defs {
		if err := def.Validate(); err != nil {
			return err
		}
		if old, ok := s.indexes[def.Name]; ok {
			if old.Def().Field == def.Field {
				continue
			}
			return fmt.Errorf("statedb: index %q already defined on field %q", def.Name, old.Def().Field)
		}
		if field, ok := inBatch[def.Name]; ok {
			if field == def.Field {
				continue
			}
			return fmt.Errorf("statedb: index %q declared twice with fields %q and %q", def.Name, field, def.Field)
		}
		inBatch[def.Name] = def.Field
		fresh = append(fresh, def)
	}
	if len(fresh) == 0 {
		return nil
	}
	docs := scanCandidates(s.store)
	for _, def := range fresh {
		ix := richquery.NewIndex(def)
		ix.Load(docs)
		s.indexes[def.Name] = ix
	}
	return nil
}

// IndexDefs returns the definitions of all declared indexes.
func (s *IndexedStore) IndexDefs() []richquery.IndexDef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]richquery.IndexDef, 0, len(s.indexes))
	for _, ix := range s.indexes {
		out = append(out, ix.Def())
	}
	return out
}

// Get returns the committed value and version for key.
func (s *IndexedStore) Get(key string) (VersionedValue, bool) { return s.store.Get(key) }

// GetVersion returns only the version for key.
func (s *IndexedStore) GetVersion(key string) (Version, bool) { return s.store.GetVersion(key) }

// Height returns the version of the last applied update batch.
func (s *IndexedStore) Height() Version { return s.store.Height() }

// GetRange streams committed entries with startKey <= key < endKey.
func (s *IndexedStore) GetRange(startKey, endKey string) Iterator {
	return s.store.GetRange(startKey, endKey)
}

// GetByPartialCompositeKey streams composite keys matching the prefix.
func (s *IndexedStore) GetByPartialCompositeKey(objectType string, attrs []string) (Iterator, error) {
	return s.store.GetByPartialCompositeKey(objectType, attrs)
}

// Len returns the number of live keys.
func (s *IndexedStore) Len() int { return s.store.Len() }

// Snapshot returns a consistent read view at the current batch boundary.
func (s *IndexedStore) Snapshot() Snapshot { return s.store.Snapshot() }

// Export returns a deep copy of the live state as a flat map.
func (s *IndexedStore) Export() map[string]VersionedValue { return s.store.Export() }

// ApplyUpdates applies the batch to the underlying store and maintains
// every declared index incrementally: deleted keys leave the indexes,
// written keys are (re)indexed from their new JSON document. Composite keys
// and non-JSON values are never indexed. Index maintenance is atomic with
// respect to the index-served side of queries (both take mu), and indexes
// are fed straight from the batch's staged values, so a block's worth of
// writes is applied without re-reading each key from the store.
func (s *IndexedStore) ApplyUpdates(batch *UpdateBatch, height Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.store.ApplyUpdates(batch, height); err != nil {
		return err
	}
	if len(s.indexes) == 0 {
		return nil
	}
	batch.Range(func(key string, value []byte, isDelete bool, _ Version) {
		if strings.Contains(key, compositeKeySep) {
			return
		}
		var doc map[string]any
		if !isDelete {
			doc, _ = richquery.DecodeDoc(value)
		}
		for _, ix := range s.indexes {
			if doc != nil {
				ix.Put(key, doc)
			} else {
				ix.Delete(key)
			}
		}
	})
	return nil
}

// Restore replaces the live state with a snapshot and rebuilds every index
// from it (state-transfer after a partition heals).
func (s *IndexedStore) Restore(snap map[string]VersionedValue, height Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.Restore(snap, height)
	docs := scanCandidates(s.store)
	for name, ix := range s.indexes {
		fresh := richquery.NewIndex(ix.Def())
		fresh.Load(docs)
		s.indexes[name] = fresh
	}
}

// IndexEntries exports every declared index's contents, keyed by index
// name. The commit pipeline captures this alongside the state snapshot at
// checkpoint boundaries, so a restored peer bulk-loads its indexes instead
// of re-decoding every JSON document in state.
func (s *IndexedStore) IndexEntries() map[string][]richquery.IndexEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.indexes) == 0 {
		return nil
	}
	out := make(map[string][]richquery.IndexEntry, len(s.indexes))
	for name, ix := range s.indexes {
		out[name] = ix.Entries()
	}
	return out
}

// RestoreWithIndexEntries is Restore for checkpoint recovery: indexes whose
// serialized entries are present bulk-load them (no document re-decoding);
// any declared index missing from entries is rebuilt from the snapshot.
// Unlike Restore, the store takes ownership of snap (no deep copy) — the
// caller must have materialized it freshly, as checkpoint decoding does.
func (s *IndexedStore) RestoreWithIndexEntries(snap map[string]VersionedValue, height Version, entries map[string][]richquery.IndexEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.restoreOwned(snap, height)
	var docs []richquery.Candidate // lazily built for indexes without entries
	for name, ix := range s.indexes {
		fresh := richquery.NewIndex(ix.Def())
		if es, ok := entries[name]; ok {
			fresh.LoadEntries(es)
		} else {
			if docs == nil {
				docs = scanCandidates(s.store)
			}
			fresh.Load(docs)
		}
		s.indexes[name] = fresh
	}
}

// ExecuteQuery runs a Mango query against a consistent snapshot of state.
// Under a brief read lock the planner picks an index and copies the
// matching keys out of it (the index-served path, unchanged); the snapshot
// is taken under the same lock, so index contents and snapshot agree. The
// lock is then dropped and candidate documents stream from the snapshot —
// a full filtered scan when no index applies — so scan-heavy queries never
// hold up commit. Both paths run the same filter/sort/pagination pipeline
// (finishQuery), so they return identical pages.
func (s *IndexedStore) ExecuteQuery(query []byte) (*QueryResult, error) {
	q, err := richquery.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	snap := s.store.Snapshot()
	all := make([]*richquery.Index, 0, len(s.indexes))
	for _, ix := range s.indexes {
		all = append(all, ix)
	}
	plan := richquery.ChooseIndex(q, all)
	var keys []string
	if plan.Index != nil {
		keys = plan.Index.Range(plan.Low, plan.High)
	}
	s.mu.RUnlock()
	defer snap.Release()

	var cands []richquery.Candidate
	if plan.Index == nil {
		cands = scanCandidates(snap)
	} else {
		for _, key := range keys {
			vv, ok := snap.Get(key)
			if !ok {
				continue
			}
			if doc, ok := richquery.DecodeDoc(vv.Value); ok {
				cands = append(cands, richquery.Candidate{Key: key, Doc: doc})
			}
		}
	}
	return finishQuery(snap, q, cands)
}

// ScanQuery executes a Mango query against any state reader with a
// filtered full scan — the fallback for stores without rich-query support
// (the shim's LevelDB-flavour path). Live stores are snapshotted first so
// the scan is consistent. It runs the identical pipeline IndexedStore
// uses, which is what keeps fallback and indexed results interchangeable.
func ScanQuery(s StateReader, query []byte) (*QueryResult, error) {
	q, err := richquery.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	if sp, ok := s.(interface{ Snapshot() Snapshot }); ok {
		snap := sp.Snapshot()
		defer snap.Release()
		s = snap
	}
	return finishQuery(s, q, scanCandidates(s))
}

// scanCandidates streams every live JSON document from r.
func scanCandidates(r StateReader) []richquery.Candidate {
	it := r.GetRange("", "")
	defer it.Close()
	var cands []richquery.Candidate
	for {
		kv, ok := it.Next()
		if !ok {
			return cands
		}
		if doc, ok := richquery.DecodeDoc(kv.Value); ok {
			cands = append(cands, richquery.Candidate{Key: kv.Key, Doc: doc})
		}
	}
}

// finishQuery runs the shared filter/sort/pagination pipeline over cands
// and materializes the matching entries from r.
func finishQuery(r StateReader, q *richquery.Query, cands []richquery.Candidate) (*QueryResult, error) {
	keys, bookmark, err := richquery.Apply(q, cands)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Bookmark: bookmark}
	for _, key := range keys {
		vv, ok := r.Get(key)
		if !ok {
			continue // candidate vanished mid-query; defensive
		}
		res.KVs = append(res.KVs, KV{Key: key, Value: vv.Value, Version: vv.Version})
	}
	return res, nil
}
