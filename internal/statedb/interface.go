package statedb

// Iterator streams ordered state entries. Next returns the next entry in
// key order until the range is exhausted; Close ends the scan early and
// releases any backing snapshot (Next closes the iterator itself on
// exhaustion, and Close is idempotent). Streaming plus early termination is
// what makes range scans cost O(log n + results read) instead of
// materializing and sorting the whole keyspace.
type Iterator interface {
	Next() (KV, bool)
	Close()
}

// StateReader is the read-only surface shared by live stores, snapshots,
// and simulation views; chaincode stubs and query execution depend only on
// it.
type StateReader interface {
	// Get returns the committed value and version for key.
	Get(key string) (VersionedValue, bool)
	// GetVersion returns only the version for key.
	GetVersion(key string) (Version, bool)
	// GetRange streams committed entries with startKey <= key < endKey.
	GetRange(startKey, endKey string) Iterator
	// GetByPartialCompositeKey streams composite keys matching the prefix.
	GetByPartialCompositeKey(objectType string, attrs []string) (Iterator, error)
}

// Snapshot is a height-stamped consistent read view at a batch boundary.
// Reads never block ApplyUpdates: the sharded store preserves overwritten
// values into outstanding snapshots copy-on-write. Release when done.
type Snapshot interface {
	StateReader
	// Height returns the commit height the snapshot was taken at.
	Height() Version
	// Len returns the number of live keys at the boundary.
	Len() int
	// All streams every live key (composite keys included) in key order.
	All() Iterator
	// Materialize deep-copies the view into the flat map form the
	// checkpoint codec and state transfer serialize.
	Materialize() map[string]VersionedValue
	// Release detaches the view; it must not be read afterwards.
	Release()
}

// StateDB is the pluggable world-state interface a peer commits to and a
// chaincode stub reads from. The sharded LevelDB-flavour Store, the
// CouchDB-flavour IndexedStore, and the single-lock ReferenceStore oracle
// all implement it; higher layers (shim, rwset validation, peer) depend
// only on this interface, mirroring Fabric's VersionedDB seam that lets
// deployments choose their state database.
type StateDB interface {
	StateReader
	// Height returns the version of the last applied update batch.
	Height() Version
	// ApplyUpdates applies a batch atomically at the given commit height.
	ApplyUpdates(batch *UpdateBatch, height Version) error
	// Len returns the number of live keys.
	Len() int
	// Snapshot returns a consistent read view at the current boundary.
	Snapshot() Snapshot
	// Export returns a deep copy of the live state as a flat map.
	Export() map[string]VersionedValue
	// Restore replaces the live state with a snapshot at the given height.
	Restore(snap map[string]VersionedValue, height Version)
}

// QueryResult is one page of a rich query.
type QueryResult struct {
	// KVs are the matching entries in result order.
	KVs []KV
	// Bookmark resumes the query on the next page; empty when exhausted.
	Bookmark string
}

// RichQueryer is implemented by state databases that can execute Mango
// queries (the CouchDB-flavour IndexedStore, and simulation Views, which
// delegate). Callers should type-assert: a plain Store does not support
// rich queries, exactly as Fabric's LevelDB state database does not.
type RichQueryer interface {
	// ExecuteQuery runs a Mango query document (see richquery.ParseQuery)
	// against live state and returns one result page.
	ExecuteQuery(query []byte) (*QueryResult, error)
}

// Compile-time interface checks.
var (
	_ StateDB     = (*Store)(nil)
	_ StateDB     = (*IndexedStore)(nil)
	_ StateDB     = (*ReferenceStore)(nil)
	_ Snapshot    = (*storeSnapshot)(nil)
	_ Snapshot    = (*frozenSnapshot)(nil)
	_ RichQueryer = (*IndexedStore)(nil)
	_ RichQueryer = (*View)(nil)
	_ StateReader = (*View)(nil)
)
