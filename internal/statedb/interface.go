package statedb

// StateDB is the pluggable world-state interface a peer commits to and a
// chaincode stub reads from. The LevelDB-flavour Store and the
// CouchDB-flavour IndexedStore both implement it; higher layers (shim,
// rwset validation, peer) depend only on this interface, mirroring
// Fabric's VersionedDB seam that lets deployments choose their state
// database.
type StateDB interface {
	// Get returns the committed value and version for key.
	Get(key string) (VersionedValue, bool)
	// GetVersion returns only the version for key.
	GetVersion(key string) (Version, bool)
	// Height returns the version of the last applied update batch.
	Height() Version
	// ApplyUpdates applies a batch atomically at the given commit height.
	ApplyUpdates(batch *UpdateBatch, height Version) error
	// GetRange returns committed entries with startKey <= key < endKey.
	GetRange(startKey, endKey string) []KV
	// GetByPartialCompositeKey queries composite keys by prefix.
	GetByPartialCompositeKey(objectType string, attrs []string) ([]KV, error)
	// Len returns the number of live keys.
	Len() int
	// Snapshot returns a deep copy of the live state.
	Snapshot() map[string]VersionedValue
	// Restore replaces the live state with a snapshot at the given height.
	Restore(snap map[string]VersionedValue, height Version)
}

// QueryResult is one page of a rich query.
type QueryResult struct {
	// KVs are the matching entries in result order.
	KVs []KV
	// Bookmark resumes the query on the next page; empty when exhausted.
	Bookmark string
}

// RichQueryer is implemented by state databases that can execute Mango
// queries (the CouchDB-flavour IndexedStore). Callers should type-assert:
// a plain Store does not support rich queries, exactly as Fabric's LevelDB
// state database does not.
type RichQueryer interface {
	// ExecuteQuery runs a Mango query document (see richquery.ParseQuery)
	// against live state and returns one result page.
	ExecuteQuery(query []byte) (*QueryResult, error)
}

// Compile-time interface checks.
var (
	_ StateDB     = (*Store)(nil)
	_ StateDB     = (*IndexedStore)(nil)
	_ RichQueryer = (*IndexedStore)(nil)
)
