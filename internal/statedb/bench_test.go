package statedb

import (
	"fmt"
	"testing"
)

func BenchmarkApplyUpdates(b *testing.B) {
	s := New()
	val := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		batch := NewUpdateBatch()
		ver := Version{BlockNum: uint64(i + 1)}
		batch.Put(fmt.Sprintf("key-%d", i%1024), val, ver)
		if err := s.ApplyUpdates(batch, ver); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s := New()
	batch := NewUpdateBatch()
	for i := 0; i < 1024; i++ {
		batch.Put(fmt.Sprintf("key-%d", i), make([]byte, 256), Version{BlockNum: 1})
	}
	if err := s.ApplyUpdates(batch, Version{BlockNum: 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(fmt.Sprintf("key-%d", i%1024)); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkRangeScan(b *testing.B) {
	s := New()
	batch := NewUpdateBatch()
	for i := 0; i < 1024; i++ {
		batch.Put(fmt.Sprintf("key-%04d", i), make([]byte, 64), Version{BlockNum: 1})
	}
	if err := s.ApplyUpdates(batch, Version{BlockNum: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Collect(s.GetRange("key-0100", "key-0200")); len(got) != 100 {
			b.Fatalf("range = %d", len(got))
		}
	}
}
