package statedb

import (
	"sync"

	"github.com/hyperprov/hyperprov/internal/metrics"
)

// storeMetrics is the store's optional instrumentation: per-operation
// latency histograms and a shard-contention counter. It is nil (zero cost
// on the hot paths) until SetMetrics attaches a registry.
type storeMetrics struct {
	get, scan, apply *metrics.Histogram
	contention       *metrics.Counter
}

// SetMetrics attaches per-operation state latency histograms (state_get,
// state_scan, state_apply) and the shard-contention counter
// (state_shard_contention) to reg. Pass nil to detach.
func (s *Store) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		s.metrics.Store(nil)
		return
	}
	s.metrics.Store(&storeMetrics{
		get:        reg.Histogram(metrics.StateGet),
		scan:       reg.Histogram(metrics.StateScan),
		apply:      reg.Histogram(metrics.StateApply),
		contention: reg.Counter(metrics.StateShardContention),
	})
}

// lock takes a shard's write lock, counting the acquisition as contended
// when it could not be taken immediately.
func (m *storeMetrics) lock(mu *sync.RWMutex) {
	if mu.TryLock() {
		return
	}
	m.contention.Inc()
	mu.Lock()
}

// rlock is lock for the read side.
func (m *storeMetrics) rlock(mu *sync.RWMutex) {
	if mu.TryRLock() {
		return
	}
	m.contention.Inc()
	mu.RLock()
}
