package statedb

import (
	"fmt"
	"sync"
	"testing"
)

// TestStagingBatchBasics stages puts and deletes and checks the drained
// batch reproduces them with last-write-wins per key.
func TestStagingBatchBasics(t *testing.T) {
	sb := NewStagingBatch(4)
	sb.Put("a", []byte("v1"), Version{BlockNum: 1, TxNum: 0})
	sb.Put("a", []byte("v2"), Version{BlockNum: 1, TxNum: 1})
	sb.Put("b", []byte("vb"), Version{BlockNum: 1, TxNum: 2})
	sb.Delete("c", Version{BlockNum: 1, TxNum: 3})
	if got := sb.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}

	got := map[string]string{}
	sb.Batch().Range(func(key string, value []byte, isDelete bool, ver Version) {
		if isDelete {
			got[key] = "<deleted>"
			return
		}
		got[key] = string(value)
	})
	want := map[string]string{"a": "v2", "b": "vb", "c": "<deleted>"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("drained = %v, want %v", got, want)
	}
}

// TestStagingBatchDrainResets checks Batch empties the staging front so it
// can be reused for the next block.
func TestStagingBatchDrainResets(t *testing.T) {
	sb := NewStagingBatch(2)
	sb.Put("x", []byte("v"), Version{})
	if sb.Batch().Len() != 1 {
		t.Fatal("first drain should carry the staged write")
	}
	if got := sb.Len(); got != 0 {
		t.Fatalf("Len after drain = %d, want 0", got)
	}
	if got := sb.Batch().Len(); got != 0 {
		t.Fatalf("second drain carried %d writes, want 0", got)
	}
	sb.Put("y", []byte("v2"), Version{})
	if got := sb.Batch().Len(); got != 1 {
		t.Fatalf("reuse drain = %d writes, want 1", got)
	}
}

// TestStagingBatchConcurrent hammers one staging batch from many
// goroutines writing disjoint keys — the committer's actual usage — and
// checks nothing is lost or corrupted. Run under -race this is the
// write-write-safety proof.
func TestStagingBatchConcurrent(t *testing.T) {
	const workers, perWorker = 8, 200
	sb := NewStagingBatch(4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("k-%d-%d", w, i)
				if i%10 == 9 {
					sb.Delete(key, Version{BlockNum: 1, TxNum: uint64(w)})
				} else {
					sb.Put(key, []byte(key), Version{BlockNum: 1, TxNum: uint64(w)})
				}
			}
		}(w)
	}
	wg.Wait()

	if got := sb.Len(); got != workers*perWorker {
		t.Fatalf("Len = %d, want %d", got, workers*perWorker)
	}
	puts, deletes := 0, 0
	sb.Batch().Range(func(key string, value []byte, isDelete bool, ver Version) {
		if isDelete {
			deletes++
			return
		}
		if string(value) != key {
			t.Fatalf("key %q carries value %q", key, value)
		}
		puts++
	})
	if wantDel := workers * perWorker / 10; deletes != wantDel {
		t.Fatalf("deletes = %d, want %d", deletes, wantDel)
	}
	if wantPut := workers * perWorker * 9 / 10; puts != wantPut {
		t.Fatalf("puts = %d, want %d", puts, wantPut)
	}
}

// TestStagingBatchStripeSizing pins the n<=0 and cap behavior.
func TestStagingBatchStripeSizing(t *testing.T) {
	if got := len(NewStagingBatch(0).stripes); got < 1 {
		t.Fatalf("auto-sized stripes = %d, want >= 1", got)
	}
	if got := len(NewStagingBatch(maxShards * 4).stripes); got != maxShards {
		t.Fatalf("stripes = %d, want cap %d", got, maxShards)
	}
}
