package statedb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The sharded store must be observationally identical to the retained
// single-lock ReferenceStore for every read the system performs: point
// gets, plain range scans, composite-key queries, paginated iteration, and
// whole-state export. These tests drive both stores with the same random
// batch streams — across every shard count 1..8 — and compare, pinning the
// sharded implementation to the old single-map semantics exactly as
// committer.NewSerial pins the pipelined committer.

// randomBatches builds n update batches over a smallish keyspace so
// overwrite, delete, delete-then-recreate, and composite keys all occur.
func randomBatches(rng *rand.Rand, n int) []*UpdateBatch {
	batches := make([]*UpdateBatch, n)
	for i := range batches {
		b := NewUpdateBatch()
		writes := rng.Intn(20) + 1
		for j := 0; j < writes; j++ {
			ver := Version{BlockNum: uint64(i + 1), TxNum: uint64(j)}
			var key string
			switch rng.Intn(4) {
			case 0: // composite key
				key, _ = CreateCompositeKey(
					fmt.Sprintf("typ%d", rng.Intn(3)),
					[]string{fmt.Sprintf("a%d", rng.Intn(8)), fmt.Sprintf("b%d", rng.Intn(4))})
			default:
				key = fmt.Sprintf("key-%03d", rng.Intn(120))
			}
			if rng.Intn(5) == 0 {
				b.Delete(key, ver)
			} else {
				b.Put(key, []byte(fmt.Sprintf("v-%d-%d-%d", i, j, rng.Intn(10))), ver)
			}
		}
		batches[i] = b
	}
	return batches
}

// applyBoth drives an identical batch stream into both stores.
func applyBoth(t *testing.T, sharded StateDB, ref *ReferenceStore, batches []*UpdateBatch) {
	t.Helper()
	for i, b := range batches {
		h := Version{BlockNum: uint64(i + 1), TxNum: uint64(b.Len())}
		if err := sharded.ApplyUpdates(b, h); err != nil {
			t.Fatalf("sharded apply %d: %v", i, err)
		}
		if err := ref.ApplyUpdates(b, h); err != nil {
			t.Fatalf("reference apply %d: %v", i, err)
		}
	}
}

func keysOf(kvs []KV) []string {
	out := make([]string, len(kvs))
	for i, kv := range kvs {
		out[i] = kv.Key
	}
	return out
}

func TestPropertyShardedMatchesReference(t *testing.T) {
	for shards := 1; shards <= 8; shards++ {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(shards) * 7919))
			sharded := NewSharded(shards)
			ref := NewReference()
			applyBoth(t, sharded, ref, randomBatches(rng, 40))

			// Whole-state export: identical maps (keys, values, versions).
			if !reflect.DeepEqual(sharded.Export(), ref.Export()) {
				t.Fatal("Export() differs from reference")
			}
			if sharded.Len() != ref.Len() {
				t.Fatalf("Len = %d, reference %d", sharded.Len(), ref.Len())
			}
			if sharded.Height() != ref.Height() {
				t.Fatalf("Height = %v, reference %v", sharded.Height(), ref.Height())
			}

			// Point reads over the whole key universe (incl. absent keys).
			for i := 0; i < 120; i++ {
				key := fmt.Sprintf("key-%03d", i)
				gv, gok := sharded.Get(key)
				wv, wok := ref.Get(key)
				if gok != wok || !reflect.DeepEqual(gv, wv) {
					t.Fatalf("Get(%q) = (%v,%v), reference (%v,%v)", key, gv, gok, wv, wok)
				}
			}

			// Range scans with random bounds, both orders of bound values.
			for i := 0; i < 50; i++ {
				a := fmt.Sprintf("key-%03d", rng.Intn(130))
				b := fmt.Sprintf("key-%03d", rng.Intn(130))
				if rng.Intn(5) == 0 {
					a = ""
				}
				if rng.Intn(5) == 0 {
					b = ""
				}
				got := Collect(sharded.GetRange(a, b))
				want := Collect(ref.GetRange(a, b))
				if !reflect.DeepEqual(keysOf(got), keysOf(want)) {
					t.Fatalf("GetRange(%q,%q) keys = %v, reference %v", a, b, keysOf(got), keysOf(want))
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("GetRange(%q,%q) values differ from reference", a, b)
				}
			}

			// Composite-key queries at every prefix depth.
			for typ := 0; typ < 3; typ++ {
				for _, attrs := range [][]string{nil, {"a0"}, {"a1", "b0"}, {"a7", "b3"}} {
					gi, gerr := sharded.GetByPartialCompositeKey(fmt.Sprintf("typ%d", typ), attrs)
					wi, werr := ref.GetByPartialCompositeKey(fmt.Sprintf("typ%d", typ), attrs)
					if (gerr == nil) != (werr == nil) {
						t.Fatalf("composite err = %v, reference %v", gerr, werr)
					}
					if gerr != nil {
						continue
					}
					got, want := Collect(gi), Collect(wi)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("composite typ%d %v differs from reference", typ, attrs)
					}
				}
			}

			// Pagination: early-terminated iteration page by page must walk
			// the same sequence the reference materializes at once.
			want := Collect(ref.GetRange("", ""))
			var paged []KV
			cursor := ""
			for {
				it := sharded.GetRange(cursor, "")
				n := 0
				var last string
				for n < 7 {
					kv, ok := it.Next()
					if !ok {
						break
					}
					paged = append(paged, kv)
					last = kv.Key
					n++
				}
				it.Close() // early termination mid-range
				if n < 7 {
					break
				}
				cursor = last + "\x00" // resume strictly after the last key
			}
			if !reflect.DeepEqual(keysOf(paged), keysOf(want)) {
				t.Fatalf("paged walk = %v, reference %v", keysOf(paged), keysOf(want))
			}
		})
	}
}

// TestPropertyRestoreRoundTrip pins Export/Restore equivalence across
// implementations and shard counts: a state exported from either store and
// restored into the other must answer identically.
func TestPropertyRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	batches := randomBatches(rng, 25)
	ref := NewReference()
	src := NewSharded(5)
	applyBoth(t, src, ref, batches)

	for shards := 1; shards <= 8; shards += 3 {
		restored := NewSharded(shards)
		restored.Restore(ref.Export(), ref.Height())
		if !reflect.DeepEqual(restored.Export(), src.Export()) {
			t.Fatalf("restore into %d shards differs", shards)
		}
		if got, want := keysOf(Collect(restored.GetRange("", ""))), keysOf(Collect(src.GetRange("", ""))); !reflect.DeepEqual(got, want) {
			t.Fatalf("restored range scan = %v, want %v", got, want)
		}
	}
	backRef := NewReference()
	backRef.Restore(src.Export(), src.Height())
	if !reflect.DeepEqual(backRef.Export(), src.Export()) {
		t.Fatal("reference restored from sharded export differs")
	}
}

// TestPropertyCompactionChurn hammers the key index's delta/compaction
// machinery: enough writes and deletes to force multiple compactions, with
// delete-then-recreate cycles, then checks ordered iteration one final
// time against the reference.
func TestPropertyCompactionChurn(t *testing.T) {
	sharded := NewSharded(4)
	ref := NewReference()
	block := uint64(1)
	apply := func(b *UpdateBatch, n int) {
		h := Version{BlockNum: block, TxNum: uint64(n)}
		if err := sharded.ApplyUpdates(b, h); err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyUpdates(b, h); err != nil {
			t.Fatal(err)
		}
		block++
	}
	// Bulk insert well past the compaction floor.
	b := NewUpdateBatch()
	for i := 0; i < 3000; i++ {
		b.Put(fmt.Sprintf("k%05d", i), []byte("v"), Version{BlockNum: block})
	}
	apply(b, 3000)
	// Delete every third key, recreate every ninth.
	b = NewUpdateBatch()
	for i := 0; i < 3000; i += 3 {
		b.Delete(fmt.Sprintf("k%05d", i), Version{BlockNum: block})
	}
	apply(b, 1000)
	b = NewUpdateBatch()
	for i := 0; i < 3000; i += 9 {
		b.Put(fmt.Sprintf("k%05d", i), []byte("back"), Version{BlockNum: block})
	}
	apply(b, 334)
	// Churn in small batches to exercise delta merging between compactions.
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < 50; r++ {
		b = NewUpdateBatch()
		for j := 0; j < 40; j++ {
			k := fmt.Sprintf("k%05d", rng.Intn(3500))
			if rng.Intn(3) == 0 {
				b.Delete(k, Version{BlockNum: block})
			} else {
				b.Put(k, []byte(fmt.Sprintf("r%d", r)), Version{BlockNum: block})
			}
		}
		apply(b, 40)
	}
	got := Collect(sharded.GetRange("", ""))
	want := Collect(ref.GetRange("", ""))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after churn: %d keys vs reference %d", len(got), len(want))
	}
	if sharded.Len() != ref.Len() {
		t.Fatalf("Len = %d, reference %d", sharded.Len(), ref.Len())
	}
}
