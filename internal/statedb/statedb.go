// Package statedb implements the versioned world-state key-value store that
// backs each peer's ledger, mirroring Fabric's state database (LevelDB
// flavour). Every committed value carries the (block, txNum) version used by
// MVCC validation, and iterators provide ordered range and composite-key
// queries for chaincode.
package statedb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Version identifies the transaction that last wrote a key.
type Version struct {
	BlockNum uint64 `json:"blockNum"`
	TxNum    uint64 `json:"txNum"`
}

// Compare returns -1, 0, or 1 as v is ordered before, equal to, or after o.
func (v Version) Compare(o Version) int {
	switch {
	case v.BlockNum < o.BlockNum:
		return -1
	case v.BlockNum > o.BlockNum:
		return 1
	case v.TxNum < o.TxNum:
		return -1
	case v.TxNum > o.TxNum:
		return 1
	default:
		return 0
	}
}

// String renders the version as "block:tx".
func (v Version) String() string { return fmt.Sprintf("%d:%d", v.BlockNum, v.TxNum) }

// VersionedValue is a value plus the version of the tx that wrote it. The
// JSON tags serve snapshot serialization by external tooling and tests;
// durable checkpoints use recovery's binary codec, not this form.
type VersionedValue struct {
	Value   []byte  `json:"value,omitempty"`
	Version Version `json:"version"`
}

// KV is one key with its committed versioned value, as yielded by iterators.
type KV struct {
	Key     string
	Value   []byte
	Version Version
}

// compositeKeySep separates the object type and attributes of composite
// keys. U+0000 keeps composite keys out of the plain-key namespace, exactly
// as Fabric does.
const compositeKeySep = "\x00"

// Errors returned by this package.
var (
	ErrEmptyKey          = errors.New("statedb: empty key")
	ErrInvalidComposite  = errors.New("statedb: invalid composite key")
	ErrStaleCommitHeight = errors.New("statedb: commit height not monotonically increasing")
)

// Store is a thread-safe versioned KV store for one channel on one peer.
// The zero value is not usable; call New.
type Store struct {
	mu     sync.RWMutex
	data   map[string]VersionedValue
	height Version // version of the last applied update batch
}

// New creates an empty state store.
func New() *Store {
	return &Store{data: make(map[string]VersionedValue)}
}

// Get returns the committed value and version for key. ok is false if the
// key is absent (or has been deleted).
func (s *Store) Get(key string) (vv VersionedValue, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vv, ok = s.data[key]
	return vv, ok
}

// GetVersion returns only the version for key; ok is false if absent.
func (s *Store) GetVersion(key string) (Version, bool) {
	vv, ok := s.Get(key)
	return vv.Version, ok
}

// Height returns the version of the most recently applied update batch.
func (s *Store) Height() Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.height
}

// UpdateBatch is a set of writes applied atomically at commit time.
type UpdateBatch struct {
	writes map[string]write
}

type write struct {
	value  []byte
	delete bool
	ver    Version
}

// NewUpdateBatch creates an empty batch.
func NewUpdateBatch() *UpdateBatch {
	return &UpdateBatch{writes: make(map[string]write)}
}

// Put stages a write of value at version ver.
func (b *UpdateBatch) Put(key string, value []byte, ver Version) {
	b.writes[key] = write{value: value, ver: ver}
}

// Delete stages a deletion of key at version ver.
func (b *UpdateBatch) Delete(key string, ver Version) {
	b.writes[key] = write{delete: true, ver: ver}
}

// Len returns the number of staged writes.
func (b *UpdateBatch) Len() int { return len(b.writes) }

// Keys returns the staged keys in sorted order.
func (b *UpdateBatch) Keys() []string {
	keys := make([]string, 0, len(b.writes))
	for k := range b.writes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Range calls f for every staged write (in no particular order) with the
// staged value, delete flag, and version. It lets batch consumers — the
// indexed store's secondary-index maintenance, most importantly — apply a
// whole block's writes without re-reading each key from the store.
func (b *UpdateBatch) Range(f func(key string, value []byte, isDelete bool, ver Version)) {
	for key, w := range b.writes {
		f(key, w.value, w.delete, w.ver)
	}
}

// ApplyUpdates applies the batch atomically and records height as the new
// commit height. Heights must be strictly increasing across calls; this is
// the ledger invariant that makes peer restarts idempotent.
func (s *Store) ApplyUpdates(batch *UpdateBatch, height Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if height.Compare(s.height) <= 0 && (s.height != Version{}) {
		return fmt.Errorf("%w: have %v, got %v", ErrStaleCommitHeight, s.height, height)
	}
	for key, w := range batch.writes {
		if w.delete {
			delete(s.data, key)
		} else {
			s.data[key] = VersionedValue{Value: w.value, Version: w.ver}
		}
	}
	s.height = height
	return nil
}

// GetRange returns committed entries with startKey <= key < endKey in key
// order. An empty endKey means "to the end of the keyspace". Composite keys
// (containing U+0000) are excluded from plain range scans.
func (s *Store) GetRange(startKey, endKey string) []KV {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]KV, 0, 16)
	for key, vv := range s.data {
		if strings.Contains(key, compositeKeySep) {
			continue
		}
		if key < startKey {
			continue
		}
		if endKey != "" && key >= endKey {
			continue
		}
		out = append(out, KV{Key: key, Value: vv.Value, Version: vv.Version})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// CreateCompositeKey builds a composite key from an object type and
// attribute list, using the same U+0000 framing as Fabric.
func CreateCompositeKey(objectType string, attrs []string) (string, error) {
	if objectType == "" {
		return "", fmt.Errorf("%w: empty object type", ErrInvalidComposite)
	}
	if strings.Contains(objectType, compositeKeySep) {
		return "", fmt.Errorf("%w: object type contains U+0000", ErrInvalidComposite)
	}
	var sb strings.Builder
	sb.WriteString(compositeKeySep)
	sb.WriteString(objectType)
	sb.WriteString(compositeKeySep)
	for _, a := range attrs {
		if strings.Contains(a, compositeKeySep) {
			return "", fmt.Errorf("%w: attribute contains U+0000", ErrInvalidComposite)
		}
		sb.WriteString(a)
		sb.WriteString(compositeKeySep)
	}
	return sb.String(), nil
}

// SplitCompositeKey decomposes a composite key into its object type and
// attributes.
func SplitCompositeKey(key string) (objectType string, attrs []string, err error) {
	if !strings.HasPrefix(key, compositeKeySep) {
		return "", nil, fmt.Errorf("%w: missing prefix", ErrInvalidComposite)
	}
	parts := strings.Split(key[1:], compositeKeySep)
	if len(parts) < 2 {
		return "", nil, fmt.Errorf("%w: too few components", ErrInvalidComposite)
	}
	// Trailing separator yields one empty final element; drop it.
	return parts[0], parts[1 : len(parts)-1], nil
}

// GetByPartialCompositeKey returns all entries whose composite key starts
// with the given object type and attribute prefix, in key order.
func (s *Store) GetByPartialCompositeKey(objectType string, attrs []string) ([]KV, error) {
	prefix, err := CreateCompositeKey(objectType, attrs)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]KV, 0, 8)
	for key, vv := range s.data {
		if strings.HasPrefix(key, prefix) {
			out = append(out, KV{Key: key, Value: vv.Value, Version: vv.Version})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Len returns the number of live keys (including composite keys).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Snapshot returns a deep copy of the live state; used by tests and by
// state-transfer when a peer rejoins after a partition.
func (s *Store) Snapshot() map[string]VersionedValue {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]VersionedValue, len(s.data))
	for k, vv := range s.data {
		val := make([]byte, len(vv.Value))
		copy(val, vv.Value)
		out[k] = VersionedValue{Value: val, Version: vv.Version}
	}
	return out
}

// Restore replaces the live state with the given snapshot at the given
// height; used by state-transfer and by checkpoint-based crash recovery.
// The restored height is the MVCC low-water mark: a later ApplyUpdates at a
// height at or below it is rejected as stale, which is what makes replaying
// an already-reflected block after restart a detectable no-op instead of a
// silent double-apply.
func (s *Store) Restore(snap map[string]VersionedValue, height Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]VersionedValue, len(snap))
	for k, vv := range snap {
		val := make([]byte, len(vv.Value))
		copy(val, vv.Value)
		s.data[k] = VersionedValue{Value: val, Version: vv.Version}
	}
	s.height = height
}

// restoreOwned is Restore without the defensive deep copy: the store takes
// ownership of snap and its value slices. Reserved for callers that freshly
// materialized the snapshot and never touch it again (checkpoint recovery),
// where copying a large state would only stretch the restart the snapshot
// exists to shorten.
func (s *Store) restoreOwned(snap map[string]VersionedValue, height Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = snap
	s.height = height
}
