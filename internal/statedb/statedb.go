// Package statedb implements the versioned world-state key-value store that
// backs each peer's ledger, mirroring Fabric's state database (LevelDB
// flavour). Every committed value carries the (block, txNum) version used by
// MVCC validation.
//
// The store is sharded: point reads and writes hash (FNV-1a) onto N
// lock-striped shards, so the hot paths — endorsement reads, MVCC version
// checks, batch apply — never contend on one global lock. Ordered access
// (range scans, composite-key queries) is served by a copy-on-write sorted
// key index (keyIndex), so scans are streaming iterators with O(log n)
// seek and early termination instead of a full-map materialize-and-sort.
// Height-stamped snapshots (Store.Snapshot) give readers a consistent view
// at a batch boundary without blocking ApplyUpdates; see snapshot.go.
package statedb

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Version identifies the transaction that last wrote a key.
type Version struct {
	BlockNum uint64 `json:"blockNum"`
	TxNum    uint64 `json:"txNum"`
}

// Compare returns -1, 0, or 1 as v is ordered before, equal to, or after o.
func (v Version) Compare(o Version) int {
	switch {
	case v.BlockNum < o.BlockNum:
		return -1
	case v.BlockNum > o.BlockNum:
		return 1
	case v.TxNum < o.TxNum:
		return -1
	case v.TxNum > o.TxNum:
		return 1
	default:
		return 0
	}
}

// String renders the version as "block:tx".
func (v Version) String() string { return fmt.Sprintf("%d:%d", v.BlockNum, v.TxNum) }

// VersionedValue is a value plus the version of the tx that wrote it. The
// JSON tags serve snapshot serialization by external tooling and tests;
// durable checkpoints use recovery's binary codec, not this form.
type VersionedValue struct {
	Value   []byte  `json:"value,omitempty"`
	Version Version `json:"version"`
}

// KV is one key with its committed versioned value, as yielded by iterators.
type KV struct {
	Key     string
	Value   []byte
	Version Version
}

// compositeKeySep separates the object type and attributes of composite
// keys. U+0000 keeps composite keys out of the plain-key namespace, exactly
// as Fabric does.
const compositeKeySep = "\x00"

// plainKeyFloor is the smallest key outside the composite-key namespace:
// every composite key starts with U+0000, so clamping a plain range scan's
// lower bound to "\x01" excludes the whole namespace with a single bound
// check instead of a per-key substring scan.
const plainKeyFloor = "\x01"

// Errors returned by this package.
var (
	ErrEmptyKey          = errors.New("statedb: empty key")
	ErrInvalidComposite  = errors.New("statedb: invalid composite key")
	ErrStaleCommitHeight = errors.New("statedb: commit height not monotonically increasing")
)

// shard is one lock stripe of the store's key-value data.
type shard struct {
	mu   sync.RWMutex
	data map[string]VersionedValue
}

// Store is a thread-safe versioned KV store for one channel on one peer.
// The zero value is not usable; call New or NewSharded.
//
// Concurrency model: point operations take only their shard's lock. Batch
// apply (ApplyUpdates) and Restore are writers; snapshot creation briefly
// synchronizes with them so every snapshot sits exactly at a batch
// boundary. Readers holding a Snapshot never block a subsequent apply —
// the apply preserves overwritten values into the snapshot's overlay
// (copy-on-write) instead of waiting.
type Store struct {
	shards []shard

	// applyMu serializes writers (ApplyUpdates, Restore) and orders
	// snapshot creation against them; point reads never touch it.
	applyMu sync.RWMutex

	height atomic.Pointer[Version]
	index  atomic.Pointer[keyIndex]

	snapMu sync.Mutex
	snaps  map[*storeSnapshot]struct{}

	metrics atomic.Pointer[storeMetrics]
}

// maxShards caps the stripe count; past this, stripes only add footprint.
const maxShards = 256

// parallelApplyMin is the batch size below which fanning ApplyUpdates
// across shard goroutines costs more than it saves.
const parallelApplyMin = 64

// New creates an empty state store with one shard per available CPU.
func New() *Store { return NewSharded(0) }

// NewSharded creates an empty state store with n lock-striped shards;
// n <= 0 means GOMAXPROCS.
func NewSharded(n int) *Store {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		n = maxShards
	}
	s := &Store{
		shards: make([]shard, n),
		snaps:  make(map[*storeSnapshot]struct{}),
	}
	for i := range s.shards {
		s.shards[i].data = make(map[string]VersionedValue)
	}
	s.index.Store(emptyKeyIndex)
	s.height.Store(&Version{})
	return s
}

// ShardCount returns the number of lock stripes.
func (s *Store) ShardCount() int { return len(s.shards) }

// shardFor hashes key (FNV-1a) onto its shard.
func (s *Store) shardFor(key string) *shard { return &s.shards[s.shardIndex(key)] }

// Get returns the committed value and version for key. ok is false if the
// key is absent (or has been deleted). Only the key's shard is locked.
func (s *Store) Get(key string) (VersionedValue, bool) {
	m := s.metrics.Load()
	if m == nil {
		sh := s.shardFor(key)
		sh.mu.RLock()
		vv, ok := sh.data[key]
		sh.mu.RUnlock()
		return vv, ok
	}
	start := time.Now()
	sh := s.shardFor(key)
	m.rlock(&sh.mu)
	vv, ok := sh.data[key]
	sh.mu.RUnlock()
	m.get.Observe(time.Since(start))
	return vv, ok
}

// GetVersion returns only the version for key; ok is false if absent.
func (s *Store) GetVersion(key string) (Version, bool) {
	vv, ok := s.Get(key)
	return vv.Version, ok
}

// Height returns the version of the most recently applied update batch.
func (s *Store) Height() Version { return *s.height.Load() }

// Len returns the number of live keys (including composite keys).
func (s *Store) Len() int { return s.index.Load().live }

// UpdateBatch is a set of writes applied atomically at commit time.
type UpdateBatch struct {
	writes map[string]write
}

type write struct {
	value  []byte
	delete bool
	ver    Version
}

// NewUpdateBatch creates an empty batch.
func NewUpdateBatch() *UpdateBatch {
	return &UpdateBatch{writes: make(map[string]write)}
}

// Put stages a write of value at version ver.
func (b *UpdateBatch) Put(key string, value []byte, ver Version) {
	b.writes[key] = write{value: value, ver: ver}
}

// Delete stages a deletion of key at version ver.
func (b *UpdateBatch) Delete(key string, ver Version) {
	b.writes[key] = write{delete: true, ver: ver}
}

// Len returns the number of staged writes.
func (b *UpdateBatch) Len() int { return len(b.writes) }

// Keys returns the staged keys in sorted order.
func (b *UpdateBatch) Keys() []string {
	keys := make([]string, 0, len(b.writes))
	for k := range b.writes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Range calls f for every staged write (in no particular order) with the
// staged value, delete flag, and version. It lets batch consumers — the
// indexed store's secondary-index maintenance, most importantly — apply a
// whole block's writes without re-reading each key from the store.
func (b *UpdateBatch) Range(f func(key string, value []byte, isDelete bool, ver Version)) {
	for key, w := range b.writes {
		f(key, w.value, w.delete, w.ver)
	}
}

// StagingBatch is a write-write-safe front for assembling an UpdateBatch
// from many goroutines at once: Put and Delete hash the key (FNV-1a, the
// store's shard hash) onto a lock stripe, so concurrent stagers — the
// committer's parallel MVCC workers — never race on one map. Each stripe
// map keeps last-write-wins semantics per key exactly like UpdateBatch;
// callers that stage the same key concurrently without external ordering
// get an arbitrary winner, so the conflict-graph scheduler serializes
// write-write conflicting transactions into different wavefronts.
type StagingBatch struct {
	stripes []stagingStripe
}

type stagingStripe struct {
	mu     sync.Mutex
	writes map[string]write
	_      [48]byte // pad stripes apart so adjacent locks don't false-share
}

// NewStagingBatch creates a staging batch with n lock stripes (n <= 0 means
// GOMAXPROCS, capped like the store's shard count).
func NewStagingBatch(n int) *StagingBatch {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		n = maxShards
	}
	sb := &StagingBatch{stripes: make([]stagingStripe, n)}
	for i := range sb.stripes {
		sb.stripes[i].writes = make(map[string]write)
	}
	return sb
}

func (sb *StagingBatch) stripeFor(key string) *stagingStripe {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &sb.stripes[h%uint32(len(sb.stripes))]
}

// Put stages a write of value at version ver. Safe for concurrent use.
func (sb *StagingBatch) Put(key string, value []byte, ver Version) {
	st := sb.stripeFor(key)
	st.mu.Lock()
	st.writes[key] = write{value: value, ver: ver}
	st.mu.Unlock()
}

// Delete stages a deletion of key at version ver. Safe for concurrent use.
func (sb *StagingBatch) Delete(key string, ver Version) {
	st := sb.stripeFor(key)
	st.mu.Lock()
	st.writes[key] = write{delete: true, ver: ver}
	st.mu.Unlock()
}

// Len returns the number of staged writes.
func (sb *StagingBatch) Len() int {
	n := 0
	for i := range sb.stripes {
		st := &sb.stripes[i]
		st.mu.Lock()
		n += len(st.writes)
		st.mu.Unlock()
	}
	return n
}

// Batch drains the staged writes into a plain UpdateBatch. The staging
// batch is empty afterwards and may be reused. Batch must not run
// concurrently with stagers — it is the single-threaded hand-off point at
// the end of a block's validation.
func (sb *StagingBatch) Batch() *UpdateBatch {
	b := NewUpdateBatch()
	for i := range sb.stripes {
		st := &sb.stripes[i]
		st.mu.Lock()
		for k, w := range st.writes {
			b.writes[k] = w
		}
		st.writes = make(map[string]write)
		st.mu.Unlock()
	}
	return b
}

// keyedWrite pairs a staged write with its key for per-shard grouping.
type keyedWrite struct {
	key string
	w   write
}

// ApplyUpdates applies the batch atomically and records height as the new
// commit height. Heights must be strictly increasing across calls; this is
// the ledger invariant that makes peer restarts idempotent.
//
// The batch is partitioned by shard and — above parallelApplyMin writes —
// applied to the shards in parallel, so the commit pipeline's apply stage
// scales with cores. Values overwritten or deleted while a Snapshot is
// outstanding are preserved into that snapshot's overlay first, which is
// what lets snapshot readers proceed without blocking this call.
func (s *Store) ApplyUpdates(batch *UpdateBatch, height Version) error {
	m := s.metrics.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if cur := s.Height(); height.Compare(cur) <= 0 && (cur != Version{}) {
		return fmt.Errorf("%w: have %v, got %v", ErrStaleCommitHeight, cur, height)
	}
	snaps := s.activeSnapshots()

	groups := make([][]keyedWrite, len(s.shards))
	for key, w := range batch.writes {
		i := s.shardIndex(key)
		groups[i] = append(groups[i], keyedWrite{key: key, w: w})
	}

	nonEmpty := make([]int, 0, len(groups))
	for i := range groups {
		if len(groups[i]) > 0 {
			nonEmpty = append(nonEmpty, i)
		}
	}
	added := make([][]string, len(s.shards))
	removed := make([][]string, len(s.shards))
	// Fan the per-shard applies across workers, the calling goroutine
	// included (it must not idle in Wait while holding applyMu). Capped by
	// GOMAXPROCS: extra goroutines on a saturated machine only add
	// scheduling latency to the apply's critical path.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(nonEmpty) {
		workers = len(nonEmpty)
	}
	if len(batch.writes) >= parallelApplyMin && workers > 1 {
		var cursor atomic.Int32
		work := func() {
			for {
				n := int(cursor.Add(1)) - 1
				if n >= len(nonEmpty) {
					return
				}
				i := nonEmpty[n]
				added[i], removed[i] = s.applyToShard(i, groups[i], snaps, m)
			}
		}
		var wg sync.WaitGroup
		for w := 1; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		work()
		// The join stays under applyMu on purpose: the apply IS the
		// exclusive-writer critical section, the pool is private to this
		// call, and the calling goroutine drained the queue itself before
		// waiting, so the wait is bounded by the slowest shard, not by any
		// foreign lock holder.
		//hyperprov:allow locksafe private worker pool joined inside the exclusive apply section
		wg.Wait()
	} else {
		for _, i := range nonEmpty {
			added[i], removed[i] = s.applyToShard(i, groups[i], snaps, m)
		}
	}

	var allAdded, allRemoved []string
	for i := range added {
		allAdded = append(allAdded, added[i]...)
		allRemoved = append(allRemoved, removed[i]...)
	}
	sort.Strings(allAdded)
	sort.Strings(allRemoved)
	s.index.Store(s.index.Load().apply(allAdded, allRemoved))

	h := height
	s.height.Store(&h)
	if m != nil {
		m.apply.Observe(time.Since(start))
	}
	return nil
}

func (s *Store) shardIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(s.shards)))
}

// applyToShard applies one shard's slice of the batch under that shard's
// lock, preserving overwritten values into outstanding snapshots before
// each mutation. It reports which keys became live and which stopped being
// live, for the ordered key index.
func (s *Store) applyToShard(i int, ws []keyedWrite, snaps []*storeSnapshot, m *storeMetrics) (added, removed []string) {
	sh := &s.shards[i]
	if m != nil {
		m.lock(&sh.mu)
	} else {
		sh.mu.Lock()
	}
	for _, kw := range ws {
		old, existed := sh.data[kw.key]
		for _, sn := range snaps {
			sn.preserve(kw.key, old, existed)
		}
		if kw.w.delete {
			if existed {
				delete(sh.data, kw.key)
				removed = append(removed, kw.key)
			}
		} else {
			if !existed {
				added = append(added, kw.key)
			}
			sh.data[kw.key] = VersionedValue{Value: kw.w.value, Version: kw.w.ver}
		}
	}
	sh.mu.Unlock()
	return added, removed
}

// GetRange returns a streaming iterator over committed entries with
// startKey <= key < endKey in key order. An empty endKey means "to the end
// of the keyspace". The composite-key namespace (keys prefixed with U+0000)
// is excluded by clamping the lower bound — a single comparison, not a
// per-key check. The iterator reads from an internal snapshot, so the scan
// is consistent at a batch boundary and never blocks ApplyUpdates; it
// releases the snapshot on Close (or exhaustion).
func (s *Store) GetRange(startKey, endKey string) Iterator {
	return s.snapshot().rangeIter(startKey, endKey, true)
}

// CreateCompositeKey builds a composite key from an object type and
// attribute list, using the same U+0000 framing as Fabric.
func CreateCompositeKey(objectType string, attrs []string) (string, error) {
	if objectType == "" {
		return "", fmt.Errorf("%w: empty object type", ErrInvalidComposite)
	}
	if strings.Contains(objectType, compositeKeySep) {
		return "", fmt.Errorf("%w: object type contains U+0000", ErrInvalidComposite)
	}
	var sb strings.Builder
	sb.WriteString(compositeKeySep)
	sb.WriteString(objectType)
	sb.WriteString(compositeKeySep)
	for _, a := range attrs {
		if strings.Contains(a, compositeKeySep) {
			return "", fmt.Errorf("%w: attribute contains U+0000", ErrInvalidComposite)
		}
		sb.WriteString(a)
		sb.WriteString(compositeKeySep)
	}
	return sb.String(), nil
}

// SplitCompositeKey decomposes a composite key into its object type and
// attributes.
func SplitCompositeKey(key string) (objectType string, attrs []string, err error) {
	if !strings.HasPrefix(key, compositeKeySep) {
		return "", nil, fmt.Errorf("%w: missing prefix", ErrInvalidComposite)
	}
	parts := strings.Split(key[1:], compositeKeySep)
	if len(parts) < 2 {
		return "", nil, fmt.Errorf("%w: too few components", ErrInvalidComposite)
	}
	// Trailing separator yields one empty final element; drop it.
	return parts[0], parts[1 : len(parts)-1], nil
}

// GetByPartialCompositeKey returns a streaming iterator over all entries
// whose composite key starts with the given object type and attribute
// prefix, in key order.
func (s *Store) GetByPartialCompositeKey(objectType string, attrs []string) (Iterator, error) {
	prefix, err := CreateCompositeKey(objectType, attrs)
	if err != nil {
		return nil, err
	}
	return s.snapshot().prefixIter(prefix, true), nil
}

// Snapshot returns a height-stamped consistent read view at the current
// batch boundary. Creation is O(1): the view pins the immutable key index
// and lazily copies only values that later applies overwrite. Callers must
// Release the snapshot when done so applies stop preserving into it.
func (s *Store) Snapshot() Snapshot { return s.snapshot() }

// snapshot is Snapshot returning the concrete type. Registration happens
// before applyMu is released: an apply that started after the pinned
// boundary must already see the snapshot in snaps, or it would mutate
// shards without preserving pre-images and the view would shear. (Lock
// order applyMu -> snapMu matches ApplyUpdates and replaceState.)
func (s *Store) snapshot() *storeSnapshot {
	s.applyMu.RLock()
	sn := &storeSnapshot{
		store:  s,
		height: s.Height(),
		index:  s.index.Load(),
	}
	s.snapMu.Lock()
	s.snaps[sn] = struct{}{}
	s.snapMu.Unlock()
	s.applyMu.RUnlock()
	return sn
}

// activeSnapshots returns the outstanding snapshots an apply must preserve
// overwritten values into.
func (s *Store) activeSnapshots() []*storeSnapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if len(s.snaps) == 0 {
		return nil
	}
	out := make([]*storeSnapshot, 0, len(s.snaps))
	for sn := range s.snaps {
		out = append(out, sn)
	}
	return out
}

// dropSnapshot unregisters a released snapshot.
func (s *Store) dropSnapshot(sn *storeSnapshot) {
	s.snapMu.Lock()
	delete(s.snaps, sn)
	s.snapMu.Unlock()
}

// Export returns a deep copy of the live state as a flat map — the form the
// checkpoint codec and state transfer serialize.
func (s *Store) Export() map[string]VersionedValue {
	sn := s.snapshot()
	defer sn.Release()
	return sn.Materialize()
}

// Restore replaces the live state with the given snapshot at the given
// height; used by state-transfer and by checkpoint-based crash recovery.
// The restored height is the MVCC low-water mark: a later ApplyUpdates at a
// height at or below it is rejected as stale, which is what makes replaying
// an already-reflected block after restart a detectable no-op instead of a
// silent double-apply. Outstanding snapshots are detached (their reads
// report absent thereafter); callers quiesce readers around a restore.
func (s *Store) Restore(snap map[string]VersionedValue, height Version) {
	s.replaceState(snap, height, true)
}

// restoreOwned is Restore without the defensive deep copy: the store takes
// ownership of snap's value slices. Reserved for callers that freshly
// materialized the snapshot and never touch it again (checkpoint recovery),
// where copying a large state would only stretch the restart the snapshot
// exists to shorten.
func (s *Store) restoreOwned(snap map[string]VersionedValue, height Version) {
	s.replaceState(snap, height, false)
}

func (s *Store) replaceState(snap map[string]VersionedValue, height Version, copyValues bool) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()

	s.snapMu.Lock()
	for sn := range s.snaps {
		sn.detach()
	}
	s.snaps = make(map[*storeSnapshot]struct{})
	s.snapMu.Unlock()

	fresh := make([]map[string]VersionedValue, len(s.shards))
	for i := range fresh {
		fresh[i] = make(map[string]VersionedValue, len(snap)/len(s.shards)+1)
	}
	keys := make([]string, 0, len(snap))
	for k, vv := range snap {
		keys = append(keys, k)
		if copyValues {
			val := make([]byte, len(vv.Value))
			copy(val, vv.Value)
			vv = VersionedValue{Value: val, Version: vv.Version}
		}
		fresh[s.shardIndex(k)][k] = vv
	}
	sort.Strings(keys)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.data = fresh[i]
		sh.mu.Unlock()
	}
	s.index.Store(&keyIndex{base: keys, live: len(keys)})
	h := height
	s.height.Store(&h)
}
