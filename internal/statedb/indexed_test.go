package statedb

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"github.com/hyperprov/hyperprov/internal/richquery"
)

func mustIndexed(t *testing.T, defs ...richquery.IndexDef) *IndexedStore {
	t.Helper()
	s, err := NewIndexed(defs...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func docBytes(t *testing.T, fields map[string]any) []byte {
	t.Helper()
	b, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func queryKeys(t *testing.T, s *IndexedStore, query string) []string {
	t.Helper()
	res, err := s.ExecuteQuery([]byte(query))
	if err != nil {
		t.Fatalf("query %s: %v", query, err)
	}
	keys := make([]string, len(res.KVs))
	for i, kv := range res.KVs {
		keys[i] = kv.Key
	}
	return keys
}

func TestIndexedStoreQueryIndexVsScan(t *testing.T) {
	indexed := mustIndexed(t, richquery.IndexDef{Name: "by-owner", Field: "owner"})
	plain := mustIndexed(t) // no indexes: every query scans

	owners := []string{"alice", "bob", "carol"}
	for block := uint64(1); block <= 3; block++ {
		b := NewUpdateBatch()
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("rec-%d-%02d", block, i)
			doc := docBytes(t, map[string]any{"owner": owners[i%len(owners)], "n": i})
			ver := Version{BlockNum: block, TxNum: uint64(i)}
			b.Put(key, doc, ver)
		}
		for _, s := range []*IndexedStore{indexed, plain} {
			if err := s.ApplyUpdates(cloneBatch(b), Version{BlockNum: block, TxNum: 99}); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, q := range []string{
		`{"selector":{"owner":"alice"}}`,
		`{"selector":{"owner":{"$in":["bob","carol"]}}}`,
		`{"selector":{"owner":{"$gte":"b"}},"sort":[{"owner":"desc"}]}`,
		`{"selector":{"n":{"$lt":5}}}`, // unindexed field: both scan
	} {
		a, b := queryKeys(t, indexed, q), queryKeys(t, plain, q)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("query %s: indexed %v != scan %v", q, a, b)
		}
		if len(a) == 0 {
			t.Errorf("query %s returned nothing", q)
		}
	}
}

// cloneBatch copies a batch so two stores can apply "the same" commit.
func cloneBatch(b *UpdateBatch) *UpdateBatch {
	out := NewUpdateBatch()
	for k, w := range b.writes {
		if w.delete {
			out.Delete(k, w.ver)
		} else {
			out.Put(k, w.value, w.ver)
		}
	}
	return out
}

// TestIndexedStoreMaintenanceAcrossCommits drives random batches of puts,
// updates, deletes, and re-adds across increasing heights and checks every
// indexed query against the scan answer after each commit.
func TestIndexedStoreMaintenanceAcrossCommits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	indexed := mustIndexed(t,
		richquery.IndexDef{Name: "by-owner", Field: "owner"},
		richquery.IndexDef{Name: "by-size", Field: "size"})
	shadow := map[string]bool{}
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	owners := []string{"alice", "bob"}

	for block := uint64(1); block <= 120; block++ {
		b := NewUpdateBatch()
		for n := 0; n < 1+rng.Intn(4); n++ {
			key := keys[rng.Intn(len(keys))]
			ver := Version{BlockNum: block, TxNum: uint64(n)}
			if shadow[key] && rng.Intn(3) == 0 {
				b.Delete(key, ver)
				shadow[key] = false
			} else {
				doc := docBytes(t, map[string]any{
					"owner": owners[rng.Intn(len(owners))],
					"size":  float64(rng.Intn(10)),
				})
				b.Put(key, doc, ver)
				shadow[key] = true
			}
		}
		if err := indexed.ApplyUpdates(b, Version{BlockNum: block, TxNum: 10}); err != nil {
			t.Fatal(err)
		}

		for _, q := range []string{
			`{"selector":{"owner":"alice"}}`,
			`{"selector":{"size":{"$gte":3,"$lt":8}}}`,
		} {
			got := queryKeys(t, indexed, q)
			want := scanReference(t, indexed, q)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("block %d query %s: indexed %v != scan %v", block, q, got, want)
			}
		}
	}

	// Restore must rebuild indexes: move state to a fresh store.
	snap := indexed.Export()
	restored := mustIndexed(t,
		richquery.IndexDef{Name: "by-owner", Field: "owner"},
		richquery.IndexDef{Name: "by-size", Field: "size"})
	restored.Restore(snap, indexed.Height())
	for _, q := range []string{`{"selector":{"owner":"alice"}}`, `{"selector":{"size":{"$lt":4}}}`} {
		if fmt.Sprint(queryKeys(t, restored, q)) != fmt.Sprint(queryKeys(t, indexed, q)) {
			t.Errorf("restored store answers %s differently", q)
		}
	}
}

// scanReference answers q by brute force over a snapshot through the same
// Apply pipeline but with no index involved.
func scanReference(t *testing.T, s *IndexedStore, query string) []string {
	t.Helper()
	q, err := richquery.ParseQuery([]byte(query))
	if err != nil {
		t.Fatal(err)
	}
	var cands []richquery.Candidate
	for _, kv := range Collect(s.GetRange("", "")) {
		if doc, ok := richquery.DecodeDoc(kv.Value); ok {
			cands = append(cands, richquery.Candidate{Key: kv.Key, Doc: doc})
		}
	}
	keys, _, err := richquery.Apply(q, cands)
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestDefineIndexOverExistingState(t *testing.T) {
	s := mustIndexed(t)
	b := NewUpdateBatch()
	for i := 0; i < 10; i++ {
		b.Put(fmt.Sprintf("k%d", i), docBytes(t, map[string]any{"owner": fmt.Sprintf("o%d", i%2)}),
			Version{BlockNum: 1, TxNum: uint64(i)})
	}
	if err := s.ApplyUpdates(b, Version{BlockNum: 1, TxNum: 10}); err != nil {
		t.Fatal(err)
	}
	// Declared after the data landed: must be built over existing state.
	if err := s.DefineIndex(richquery.IndexDef{Name: "by-owner", Field: "owner"}); err != nil {
		t.Fatal(err)
	}
	if got := queryKeys(t, s, `{"selector":{"owner":"o1"}}`); len(got) != 5 {
		t.Errorf("late-defined index found %v", got)
	}
	// Same name, same field: idempotent. Same name, new field: error.
	if err := s.DefineIndex(richquery.IndexDef{Name: "by-owner", Field: "owner"}); err != nil {
		t.Errorf("idempotent redefine rejected: %v", err)
	}
	if err := s.DefineIndex(richquery.IndexDef{Name: "by-owner", Field: "size"}); err == nil {
		t.Error("conflicting redefine accepted")
	}
	if err := s.DefineIndex(richquery.IndexDef{Name: "", Field: "x"}); err == nil {
		t.Error("empty index name accepted")
	}
}

// TestDefineIndexesAtomic: a batch containing one bad definition must not
// leave any of the batch's good definitions behind (chaincode install
// failure cannot strand half an index set).
func TestDefineIndexesAtomic(t *testing.T) {
	s := mustIndexed(t, richquery.IndexDef{Name: "existing", Field: "owner"})
	err := s.DefineIndexes([]richquery.IndexDef{
		{Name: "new-1", Field: "a"},
		{Name: "existing", Field: "different"}, // conflicts
		{Name: "new-2", Field: "b"},
	})
	if err == nil {
		t.Fatal("conflicting batch accepted")
	}
	defs := s.IndexDefs()
	if len(defs) != 1 || defs[0].Name != "existing" {
		t.Fatalf("partial batch applied: %+v", defs)
	}
	// Duplicate names with divergent fields inside one batch also fail whole.
	err = s.DefineIndexes([]richquery.IndexDef{
		{Name: "dup", Field: "a"},
		{Name: "dup", Field: "b"},
	})
	if err == nil {
		t.Fatal("divergent duplicate accepted")
	}
	if len(s.IndexDefs()) != 1 {
		t.Fatalf("partial duplicate batch applied: %+v", s.IndexDefs())
	}
}

// TestScanQueryMatchesExecuteQuery pins the shared-pipeline property the
// shim fallback relies on.
func TestScanQueryMatchesExecuteQuery(t *testing.T) {
	s := mustIndexed(t, richquery.IndexDef{Name: "by-owner", Field: "owner"})
	b := NewUpdateBatch()
	for i := 0; i < 9; i++ {
		b.Put(fmt.Sprintf("k%d", i), docBytes(t, map[string]any{"owner": fmt.Sprintf("o%d", i%3)}),
			Version{BlockNum: 1, TxNum: uint64(i)})
	}
	if err := s.ApplyUpdates(b, Version{BlockNum: 1, TxNum: 20}); err != nil {
		t.Fatal(err)
	}
	query := []byte(`{"selector":{"owner":"o1"},"sort":[{"owner":"desc"}]}`)
	indexed, err := s.ExecuteQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := ScanQuery(s, query)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(indexed.KVs) != fmt.Sprint(scanned.KVs) {
		t.Errorf("ScanQuery diverges from ExecuteQuery:\n%v\n%v", scanned.KVs, indexed.KVs)
	}
	if len(indexed.KVs) != 3 {
		t.Errorf("query found %d, want 3", len(indexed.KVs))
	}
}

func TestIndexedStorePagination(t *testing.T) {
	s := mustIndexed(t, richquery.IndexDef{Name: "by-owner", Field: "owner"})
	b := NewUpdateBatch()
	for i := 0; i < 23; i++ {
		b.Put(fmt.Sprintf("k%02d", i), docBytes(t, map[string]any{"owner": "alice", "n": i}),
			Version{BlockNum: 1, TxNum: uint64(i)})
	}
	if err := s.ApplyUpdates(b, Version{BlockNum: 1, TxNum: 30}); err != nil {
		t.Fatal(err)
	}
	var got []string
	bookmark := ""
	for page := 0; ; page++ {
		q := map[string]any{"selector": map[string]any{"owner": "alice"}, "limit": 5}
		if bookmark != "" {
			q["bookmark"] = bookmark
		}
		raw, _ := json.Marshal(q)
		res, err := s.ExecuteQuery(raw)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range res.KVs {
			got = append(got, kv.Key)
		}
		if res.Bookmark == "" {
			break
		}
		bookmark = res.Bookmark
		if page > 10 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(got) != 23 {
		t.Fatalf("paged %d keys, want 23", len(got))
	}
	seen := map[string]bool{}
	for _, k := range got {
		if seen[k] {
			t.Errorf("duplicate %q across pages", k)
		}
		seen[k] = true
	}
}

func TestIndexedStoreRejectsBadQuery(t *testing.T) {
	s := mustIndexed(t)
	if _, err := s.ExecuteQuery([]byte(`{"selector":{"a":{"$bogus":1}}}`)); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := s.ExecuteQuery([]byte(`not json`)); err == nil {
		t.Error("non-JSON query accepted")
	}
}
