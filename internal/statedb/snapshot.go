package statedb

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// storeSnapshot is a height-stamped consistent read view over a sharded
// Store. Creation is O(1): it pins the store's immutable key index and
// records nothing else up front. When a later ApplyUpdates overwrites or
// deletes a key, the apply first preserves the key's prior value into this
// snapshot's overlay (copy-on-write undo log); snapshot reads consult the
// overlay before the live shards, so they always observe the state exactly
// as of the snapshot's batch boundary — without ever blocking the apply.
type storeSnapshot struct {
	store  *Store
	height Version
	index  *keyIndex

	mu      sync.Mutex
	overlay map[string]preImage // lazily allocated

	released atomic.Bool
	detached atomic.Bool
}

// preImage is a key's value as of the snapshot's boundary; existed is false
// when the key was absent then (and was created afterwards).
type preImage struct {
	vv      VersionedValue
	existed bool
}

var _ Snapshot = (*storeSnapshot)(nil)

// preserve records key's pre-apply value, keeping only the oldest pre-image
// (the one at the snapshot boundary). Called by ApplyUpdates under the
// key's shard lock, before the shard mutation.
func (sn *storeSnapshot) preserve(key string, old VersionedValue, existed bool) {
	if sn.released.Load() {
		return
	}
	sn.mu.Lock()
	if sn.overlay == nil {
		sn.overlay = make(map[string]preImage)
	}
	if _, ok := sn.overlay[key]; !ok {
		sn.overlay[key] = preImage{vv: old, existed: existed}
	}
	sn.mu.Unlock()
}

func (sn *storeSnapshot) lookupOverlay(key string) (preImage, bool) {
	sn.mu.Lock()
	pi, ok := sn.overlay[key]
	sn.mu.Unlock()
	return pi, ok
}

// Height returns the commit height the snapshot was taken at.
func (sn *storeSnapshot) Height() Version { return sn.height }

// Len returns the number of live keys at the snapshot boundary.
func (sn *storeSnapshot) Len() int { return sn.index.live }

// Get returns key's value as of the snapshot boundary. The overlay is
// checked before and after the live read: an apply always records a key's
// pre-image before mutating its shard, so if the live read raced a
// concurrent apply, the second overlay lookup finds the preserved value.
func (sn *storeSnapshot) Get(key string) (VersionedValue, bool) {
	if sn.detached.Load() {
		return VersionedValue{}, false
	}
	if pi, ok := sn.lookupOverlay(key); ok {
		return pi.vv, pi.existed
	}
	vv, ok := sn.store.Get(key)
	if pi, hit := sn.lookupOverlay(key); hit {
		return pi.vv, pi.existed
	}
	return vv, ok
}

// GetVersion returns only the version for key at the snapshot boundary.
func (sn *storeSnapshot) GetVersion(key string) (Version, bool) {
	vv, ok := sn.Get(key)
	return vv.Version, ok
}

// GetRange returns a streaming iterator over [startKey, endKey) at the
// snapshot boundary, excluding the composite-key namespace by bound. The
// iterator does not release the snapshot; the snapshot's owner does.
func (sn *storeSnapshot) GetRange(startKey, endKey string) Iterator {
	return sn.rangeIter(startKey, endKey, false)
}

// GetByPartialCompositeKey returns a streaming iterator over composite keys
// matching the prefix at the snapshot boundary.
func (sn *storeSnapshot) GetByPartialCompositeKey(objectType string, attrs []string) (Iterator, error) {
	prefix, err := CreateCompositeKey(objectType, attrs)
	if err != nil {
		return nil, err
	}
	return sn.prefixIter(prefix, false), nil
}

// All returns a streaming iterator over every live key at the snapshot
// boundary, composite keys included — the full-state walk fingerprints and
// checkpoint materialization use.
func (sn *storeSnapshot) All() Iterator {
	return sn.newIter(sn.index.seek(""), nil, false)
}

// rangeIter builds a plain-namespace range iterator. The composite-key
// namespace (keys prefixed with U+0000) is excluded by clamping the lower
// bound to plainKeyFloor — one comparison for the whole scan.
func (sn *storeSnapshot) rangeIter(startKey, endKey string, releaseOnClose bool) Iterator {
	low := startKey
	if low < plainKeyFloor {
		low = plainKeyFloor
	}
	var stop func(string) bool
	if endKey != "" {
		stop = func(k string) bool { return k >= endKey }
	}
	return sn.newIter(sn.index.seek(low), stop, releaseOnClose)
}

// prefixIter builds a composite-key prefix iterator: it seeks to the prefix
// and stops at the first key past it.
func (sn *storeSnapshot) prefixIter(prefix string, releaseOnClose bool) Iterator {
	stop := func(k string) bool { return !strings.HasPrefix(k, prefix) }
	return sn.newIter(sn.index.seek(prefix), stop, releaseOnClose)
}

func (sn *storeSnapshot) newIter(cursor keyIter, stop func(string) bool, releaseOnClose bool) *snapIter {
	it := &snapIter{sn: sn, cursor: cursor, stop: stop, releaseOnClose: releaseOnClose}
	if m := sn.store.metrics.Load(); m != nil {
		it.scanHist = m.scan
		it.start = time.Now()
	}
	return it
}

// Materialize deep-copies the snapshot into a flat map — the serialized
// form the checkpoint codec and state transfer use. It runs off the commit
// path (the recovery manager calls it in the persistence stage), which is
// exactly why Capture carries a Snapshot instead of a map.
func (sn *storeSnapshot) Materialize() map[string]VersionedValue {
	out := make(map[string]VersionedValue, sn.index.live)
	it := sn.All()
	defer it.Close()
	for {
		kv, ok := it.Next()
		if !ok {
			return out
		}
		val := make([]byte, len(kv.Value))
		copy(val, kv.Value)
		out[kv.Key] = VersionedValue{Value: val, Version: kv.Version}
	}
}

// Release detaches the snapshot from the store so applies stop preserving
// into it. The snapshot must not be read after Release. Idempotent.
func (sn *storeSnapshot) Release() {
	if sn.released.CompareAndSwap(false, true) {
		sn.store.dropSnapshot(sn)
	}
}

// detach invalidates the snapshot after a Restore replaced the state out
// from under it: reads report absent rather than mixing two worlds.
func (sn *storeSnapshot) detach() {
	sn.detached.Store(true)
	sn.released.Store(true)
}

// snapIter streams ordered KVs from a snapshot: it walks the pinned
// immutable key index and resolves each key through the snapshot's
// overlay-then-shard read, skipping keys deleted at the boundary.
type snapIter struct {
	sn             *storeSnapshot
	cursor         keyIter
	stop           func(string) bool
	releaseOnClose bool
	closed         bool

	scanHist interface{ Observe(time.Duration) }
	start    time.Time
}

// Next yields the next entry in key order; ok is false once the range is
// exhausted (the iterator closes itself then).
func (it *snapIter) Next() (KV, bool) {
	if it.closed {
		return KV{}, false
	}
	for {
		k, ok := it.cursor.next()
		if !ok || (it.stop != nil && it.stop(k)) {
			it.Close()
			return KV{}, false
		}
		vv, exists := it.sn.Get(k)
		if !exists {
			// Detached snapshot, or an index/overlay edge the read resolved
			// to absent; skip defensively.
			continue
		}
		return KV{Key: k, Value: vv.Value, Version: vv.Version}, true
	}
}

// Close ends the scan early, releasing the backing snapshot when the
// iterator owns it. Idempotent; Next auto-closes on exhaustion.
func (it *snapIter) Close() {
	if it.closed {
		return
	}
	it.closed = true
	if it.scanHist != nil {
		it.scanHist.Observe(time.Since(it.start))
	}
	if it.releaseOnClose {
		it.sn.Release()
	}
}

// Collect drains an iterator into a slice, closing it. It is the bridge for
// callers that want the whole result set at once (tests, small ranges).
func Collect(it Iterator) []KV {
	defer it.Close()
	var out []KV
	for {
		kv, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, kv)
	}
}

// View is the read surface handed to one chaincode simulation (endorsement
// or query): point, range, and composite reads come from a height-stamped
// snapshot — a consistent world no concurrent commit can shear — while rich
// (Mango) queries delegate to the parent store's live index-served path,
// whose results are phantom-validated at commit exactly as before. Release
// the view when the simulation ends.
type View struct {
	Snapshot
	rq RichQueryer
}

// NewView snapshots db and builds the simulation read surface over it.
func NewView(db StateDB) *View {
	v := &View{Snapshot: db.Snapshot()}
	v.rq, _ = db.(RichQueryer)
	return v
}

// ExecuteQuery serves a rich query: index-accelerated through the parent
// store when it supports rich queries, by filtered scan of the snapshot
// otherwise.
func (v *View) ExecuteQuery(query []byte) (*QueryResult, error) {
	if v.rq != nil {
		return v.rq.ExecuteQuery(query)
	}
	return ScanQuery(v.Snapshot, query)
}
