package statedb

import "sort"

// keyIndex is the copy-on-write ordered key index behind range scans,
// composite-key queries, and snapshot iteration. It holds every live key of
// the store (plain and composite) in two immutable sorted runs:
//
//   - base: the bulk of the keyspace, rebuilt only at compaction;
//   - delta: recent additions and deletions (tombstones), merged copy-on-
//     write at every ApplyUpdates.
//
// Both runs are never mutated after publication, so a reader (or snapshot)
// that grabbed a *keyIndex can iterate it without any lock while writers
// publish successors. Iteration is a two-pointer merge: delta entries shadow
// base entries with the same key, tombstones are skipped. Seeking is two
// binary searches, which is what makes range scans O(log n + result) instead
// of the old O(n log n) materialize-and-sort.
//
// The delta is folded into a fresh base once it grows past a fraction of the
// base (or a floor), so update cost is amortized O(1) per key per
// compaction cycle rather than O(n) per batch.
type keyIndex struct {
	base  []string
	delta []deltaKey
	live  int // total live keys (base ∪ delta minus tombstones)
}

// deltaKey is one recent change: a key added since the last compaction, or a
// tombstone (dead=true) for a key deleted from base or delta.
type deltaKey struct {
	key  string
	dead bool
}

var emptyKeyIndex = &keyIndex{}

// compactionFloor is the minimum delta length before compaction is
// considered; below it, merge-iteration over the delta is cheaper than
// rebuilding the base. maxDeltaLen caps the delta absolutely: every apply
// copies the merged delta, so without a cap the per-block maintenance
// cost would grow with base/8 — linear in total state size — on the
// commit pipeline's serialized apply stage. With the cap, a single apply
// merges at most maxDeltaLen entries and full compactions amortize to
// O(base/maxDeltaLen) per written key.
const (
	compactionFloor = 512
	maxDeltaLen     = 16384
)

// apply publishes a new index reflecting a batch: added keys were absent
// before the batch, removed keys were present. Both slices must be sorted
// and disjoint (an UpdateBatch stages at most one write per key).
func (ix *keyIndex) apply(added, removed []string) *keyIndex {
	if len(added) == 0 && len(removed) == 0 {
		return ix
	}
	// Merge the batch's changes into one sorted change run.
	changes := make([]deltaKey, 0, len(added)+len(removed))
	ai, ri := 0, 0
	for ai < len(added) || ri < len(removed) {
		if ri == len(removed) || (ai < len(added) && added[ai] < removed[ri]) {
			changes = append(changes, deltaKey{key: added[ai]})
			ai++
		} else {
			changes = append(changes, deltaKey{key: removed[ri], dead: true})
			ri++
		}
	}
	// Merge with the existing delta; the batch's entry wins on equal keys.
	merged := make([]deltaKey, 0, len(ix.delta)+len(changes))
	di, ci := 0, 0
	for di < len(ix.delta) || ci < len(changes) {
		switch {
		case ci == len(changes):
			merged = append(merged, ix.delta[di])
			di++
		case di == len(ix.delta):
			merged = append(merged, changes[ci])
			ci++
		case ix.delta[di].key < changes[ci].key:
			merged = append(merged, ix.delta[di])
			di++
		case ix.delta[di].key > changes[ci].key:
			merged = append(merged, changes[ci])
			ci++
		default:
			merged = append(merged, changes[ci])
			di++
			ci++
		}
	}
	out := &keyIndex{base: ix.base, delta: merged, live: ix.live + len(added) - len(removed)}
	limit := len(ix.base) / 8
	if limit > maxDeltaLen {
		limit = maxDeltaLen
	}
	if limit < compactionFloor {
		limit = compactionFloor
	}
	if len(merged) >= limit {
		out = out.compact()
	}
	return out
}

// compact folds the delta into a fresh base.
func (ix *keyIndex) compact() *keyIndex {
	out := make([]string, 0, ix.live)
	bi, di := 0, 0
	for bi < len(ix.base) || di < len(ix.delta) {
		switch {
		case di == len(ix.delta):
			out = append(out, ix.base[bi])
			bi++
		case bi == len(ix.base):
			if !ix.delta[di].dead {
				out = append(out, ix.delta[di].key)
			}
			di++
		case ix.base[bi] < ix.delta[di].key:
			out = append(out, ix.base[bi])
			bi++
		case ix.base[bi] > ix.delta[di].key:
			if !ix.delta[di].dead {
				out = append(out, ix.delta[di].key)
			}
			di++
		default:
			if !ix.delta[di].dead {
				out = append(out, ix.base[bi])
			}
			bi++
			di++
		}
	}
	return &keyIndex{base: out, live: len(out)}
}

// keyIter is a cursor over a keyIndex, positioned by seek. It holds only
// immutable slices, so it stays valid however far the store advances.
type keyIter struct {
	base  []string
	delta []deltaKey
	bi    int
	di    int
}

// seek positions a cursor at the first key >= start.
func (ix *keyIndex) seek(start string) keyIter {
	return keyIter{
		base:  ix.base,
		delta: ix.delta,
		bi:    sort.SearchStrings(ix.base, start),
		di: sort.Search(len(ix.delta), func(i int) bool {
			return ix.delta[i].key >= start
		}),
	}
}

// next yields keys in ascending order, delta shadowing base, tombstones
// skipped; ok is false once the index is exhausted.
func (it *keyIter) next() (string, bool) {
	for {
		switch {
		case it.bi >= len(it.base) && it.di >= len(it.delta):
			return "", false
		case it.di >= len(it.delta):
			k := it.base[it.bi]
			it.bi++
			return k, true
		case it.bi >= len(it.base):
			d := it.delta[it.di]
			it.di++
			if d.dead {
				continue
			}
			return d.key, true
		case it.base[it.bi] < it.delta[it.di].key:
			k := it.base[it.bi]
			it.bi++
			return k, true
		case it.base[it.bi] > it.delta[it.di].key:
			d := it.delta[it.di]
			it.di++
			if d.dead {
				continue
			}
			return d.key, true
		default: // same key in both runs: the delta entry decides
			d := it.delta[it.di]
			it.di++
			it.bi++
			if d.dead {
				continue
			}
			return d.key, true
		}
	}
}
