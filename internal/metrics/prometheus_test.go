package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Quantiles must land within the stated relative error bound of the true
// (nearest-rank) quantile, across magnitudes spanning many bucket groups.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform from ~100ns to ~10s so every bucket group gets hit.
		exp := rng.Float64()*8 + 2
		v := time.Duration(math.Pow(10, exp))
		h.Observe(v)
		samples = append(samples, v)
	}
	sortDurations(samples)
	s := h.Summary()
	for _, tc := range []struct {
		q    float64
		got  time.Duration
		name string
	}{
		{0.50, s.P50, "p50"},
		{0.90, s.P90, "p90"},
		{0.99, s.P99, "p99"},
		{0.999, s.P999, "p999"},
	} {
		rank := int(tc.q * float64(len(samples)))
		if rank < 1 {
			rank = 1
		}
		want := samples[rank-1]
		lo := float64(want) * (1 - QuantileRelativeError)
		hi := float64(want) * (1 + QuantileRelativeError)
		if g := float64(tc.got); g < lo || g > hi {
			t.Errorf("%s = %v, true %v, outside ±%.3f relative error",
				tc.name, tc.got, want, QuantileRelativeError)
		}
	}
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}

// Every observed value must fall in a bucket whose reported upper bound
// does not underestimate it and overestimates by at most the error bound.
func TestBucketIndexRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1000,
		1 << 20, 1<<20 + 12345, 1 << 40, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		i := bucketIndex(v)
		if i < 0 || i >= nBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		ub := uint64(bucketMax(i))
		if ub < v {
			t.Errorf("bucketMax(%d) = %d < value %d", i, ub, v)
		}
		if v >= nSub && float64(ub-v) > float64(v)*QuantileRelativeError {
			t.Errorf("bucket width at %d: upper bound %d exceeds error bound", v, ub)
		}
	}
}

// Hammer the atomic-bucket histogram with concurrent Observe and Summary;
// run with -race to catch unsynchronized access. Exact stats must survive.
func TestHistogramRaceHammer(t *testing.T) {
	var h Histogram
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Summary()
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(w*each+i) * time.Microsecond)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	s := h.Summary()
	if s.Count != workers*each {
		t.Errorf("count = %d, want %d", s.Count, workers*each)
	}
	if s.Min != 0 || s.Max != time.Duration(workers*each-1)*time.Microsecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestFormatEmitsMinMaxQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(CommitStageMVCC)
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	r.Gauge(EndorseInflight).Set(3)
	out := r.Format()
	for _, want := range []string{
		CommitStageMVCC + "_min_ns 2000000",
		CommitStageMVCC + "_max_ns 4000000",
		CommitStageMVCC + "_p50_ns ",
		CommitStageMVCC + "_p99_ns ",
		CommitStageMVCC + "_p999_ns ",
		EndorseInflight + " 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

// Golden-shape test for the Prometheus text exposition: sanitized names,
// HELP/TYPE lines, cumulative ascending histogram buckets, +Inf terminal.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("tx_validated").Add(7)
	r.Gauge("endorse_inflight").Set(2)
	h := r.Histogram("commit.stage-preval") // dots/dashes must sanitize
	h.Observe(1 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(40 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb, "hyperprov_"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP hyperprov_tx_validated",
		"# TYPE hyperprov_tx_validated counter",
		"hyperprov_tx_validated 7",
		"# TYPE hyperprov_endorse_inflight gauge",
		"hyperprov_endorse_inflight 2",
		"# TYPE hyperprov_commit_stage_preval histogram",
		"hyperprov_commit_stage_preval_count 4",
		`hyperprov_commit_stage_preval_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "commit.stage-preval_bucket") {
		t.Error("metric name not sanitized")
	}

	// Buckets must be cumulative and in ascending le order.
	var lastLE float64 = -1
	var lastCum int64 = -1
	sawInf := false
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "hyperprov_commit_stage_preval_bucket{le=") {
			continue
		}
		rest := strings.TrimPrefix(line, `hyperprov_commit_stage_preval_bucket{le="`)
		end := strings.Index(rest, `"`)
		leStr, cntStr := rest[:end], strings.TrimSpace(rest[end+2:])
		cum, err := strconv.ParseInt(cntStr, 10, 64)
		if err != nil {
			t.Fatalf("bad bucket count in %q: %v", line, err)
		}
		if cum < lastCum {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, lastCum)
		}
		lastCum = cum
		if leStr == "+Inf" {
			sawInf = true
			continue
		}
		if sawInf {
			t.Fatalf("+Inf bucket is not last: %q", line)
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("bad le in %q: %v", line, err)
		}
		if le <= lastLE {
			t.Fatalf("le not ascending: %v after %v", le, lastLE)
		}
		lastLE = le
	}
	if !sawInf {
		t.Error("no +Inf bucket")
	}
	if lastCum != 4 {
		t.Errorf("final cumulative count = %d, want 4", lastCum)
	}
}

// Labeled exposition: the constant label set must land on every sample —
// bare samples in {} form, histogram buckets merged before le — without
// changing metric names, so per-channel registries share one scrape.
func TestWritePrometheusLabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter("tx_validated").Add(3)
	r.Gauge("endorse_inflight").Set(1)
	h := r.Histogram("commit_total")
	h.Observe(2 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheusLabeled(&sb, "hyperprov_", map[string]string{"channel": "alpha"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`hyperprov_tx_validated{channel="alpha"} 3`,
		`hyperprov_endorse_inflight{channel="alpha"} 1`,
		`hyperprov_commit_total_bucket{channel="alpha",le="+Inf"} 1`,
		`hyperprov_commit_total_count{channel="alpha"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labeled exposition missing %q:\n%s", want, out)
		}
	}

	// Nil labels must degrade to the exact unlabeled form.
	var plain, viaLabeled strings.Builder
	if err := r.WritePrometheus(&plain, "p_"); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheusLabeled(&viaLabeled, "p_", nil); err != nil {
		t.Fatal(err)
	}
	if plain.String() != viaLabeled.String() {
		t.Error("nil-label exposition differs from WritePrometheus")
	}
}
