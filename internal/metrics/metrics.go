// Package metrics provides the lightweight operational counters exposed by
// peers and the ordering service — the numbers an operator of the paper's
// edge deployment would scrape (transactions validated/invalidated,
// endorsements served, blocks cut). Counters are safe for concurrent use
// and snapshot as a plain map for reporting.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored; counters are monotonic).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram records duration observations and reports summary statistics.
// It is safe for concurrent use. The commit pipeline uses one histogram per
// stage, so an operator can see where commit latency accumulates.
type Histogram struct {
	mu    sync.Mutex
	count int64
	sum   time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one duration sample. Negative durations are ignored.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	h.mu.Lock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// HistogramSummary is a snapshot of one histogram's statistics.
type HistogramSummary struct {
	Count int64
	Sum   time.Duration
	Min   time.Duration
	Max   time.Duration
	Mean  time.Duration
}

// Summary returns the histogram's current statistics.
func (h *Histogram) Summary() HistogramSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSummary{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / time.Duration(h.count)
	}
	return s
}

// Registry is a named set of counters and histograms.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram with the given name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// HistogramSummaries returns the current summary of every histogram.
func (r *Registry) HistogramSummaries() map[string]HistogramSummary {
	r.mu.Lock()
	hs := make([]*Histogram, 0, len(r.histograms))
	names := make([]string, 0, len(r.histograms))
	for name, h := range r.histograms {
		names = append(names, name)
		hs = append(hs, h)
	}
	r.mu.Unlock()
	out := make(map[string]HistogramSummary, len(hs))
	for i, h := range hs {
		out[names[i]] = h.Summary()
	}
	return out
}

// Snapshot returns the current value of every counter.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Format renders the snapshot as sorted "name value" lines.
func (r *Registry) Format() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		fmt.Fprintf(&sb, "%s %d\n", name, snap[name])
	}
	sums := r.HistogramSummaries()
	hnames := make([]string, 0, len(sums))
	for name := range sums {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		s := sums[name]
		fmt.Fprintf(&sb, "%s_count %d\n%s_sum_ns %d\n%s_mean_ns %d\n",
			name, s.Count, name, s.Sum.Nanoseconds(), name, s.Mean.Nanoseconds())
	}
	return sb.String()
}

// Well-known metric names used across the system.
const (
	EndorsementsServed = "endorsements_served"
	EndorsementsFailed = "endorsements_failed"
	BlocksCommitted    = "blocks_committed"
	TxValidated        = "tx_validated"
	TxInvalidated      = "tx_invalidated"
	QueriesServed      = "queries_served"
	BatchesCut         = "batches_cut"
	EnvelopesOrdered   = "envelopes_ordered"
	EnvelopesRejected  = "envelopes_rejected"
	GossipBlocksPulled = "gossip_blocks_pulled"
	// StateShardContention counts state-store shard lock acquisitions that
	// had to wait behind another holder — the number an operator watches to
	// decide whether the shard count still fits the workload.
	StateShardContention = "state_shard_contention"
)

// Well-known histogram names: per-block latency of each commit-pipeline
// stage, and per-operation latency of the sharded state store.
const (
	CommitStagePreval  = "commit_stage_preval"
	CommitStageMVCC    = "commit_stage_mvcc"
	CommitStagePersist = "commit_stage_persist"

	StateGet   = "state_get"
	StateScan  = "state_scan"
	StateApply = "state_apply"
)
