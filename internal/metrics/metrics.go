// Package metrics provides the operational telemetry exposed by peers, the
// ordering service, and the transport layer — the numbers an operator of
// the paper's edge deployment scrapes from the admin endpoint's /metrics
// view. Three instrument kinds cover the system:
//
//   - Counter: a monotonic event count (transactions validated, blocks
//     committed, transport frames sent, gossip rounds).
//   - Gauge: an instantaneous level that moves both ways (endorsement
//     requests currently in flight).
//   - Histogram: a fixed-bucket log-scale (HDR-style) latency distribution
//     with lock-free atomic buckets, reporting p50/p90/p99/p999 at a
//     bounded relative error of QuantileRelativeError, alongside the exact
//     count, sum, min, max, and mean.
//
// All instruments are safe for concurrent use. A Registry names a set of
// instruments, snapshots them as plain maps, renders a sorted text dump
// (Format), and writes Prometheus text exposition format (WritePrometheus).
//
// Well-known instrument names are declared as constants below: commit
// counters (BlocksCommitted, TxValidated, TxInvalidated), endorsement
// (EndorsementsServed, EndorsementsFailed, EndorseInflight), ordering
// (BatchesCut, EnvelopesOrdered, EnvelopesRejected), gossip (GossipRounds,
// GossipBlocksPulled, GossipPushDeliveries, GossipPullDeliveries,
// GossipConvergenceLag), transport (TransportFramesSent/Received,
// TransportBytesSent/Received, TransportReconnects,
// TransportHandshakeFailures, TransportRPC), the commit-stage histograms
// (CommitStage*), and the state-store instruments (State*).
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored; counters are monotonic).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level that can move in both directions — the
// endorsement queue depth, for instance.
type Gauge struct {
	v atomic.Int64
}

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds delta (either sign).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the current level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket layout: log-linear, HDR-style. Values below 2^subBits
// nanoseconds get exact unit buckets; above that, each power of two is
// split into 2^subBits linear sub-buckets, so any recorded value falls in a
// bucket whose width is at most value/2^subBits — the quantile error bound.
const (
	subBits  = 5
	nSub     = 1 << subBits // sub-buckets per power of two
	nBuckets = (64-subBits+1)*nSub + nSub
)

// QuantileRelativeError is the worst-case relative error of the quantiles a
// Histogram reports: a bucket spanning [v, v+v/32) can misreport a value by
// at most 1/32 of its magnitude.
const QuantileRelativeError = 1.0 / nSub

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < nSub {
		return int(v)
	}
	e := uint(bits.Len64(v) - 1) // position of the leading bit, >= subBits
	sub := (v >> (e - subBits)) - nSub
	return int(e-subBits+1)*nSub + int(sub)
}

// bucketMax returns the largest value bucket i can hold — the value the
// quantile walk reports for samples landing in it.
func bucketMax(i int) int64 {
	if i < nSub {
		return int64(i)
	}
	g := uint(i / nSub) // e - subBits + 1
	sub := uint64(i % nSub)
	return int64((nSub+sub+1)<<(g-1)) - 1
}

// Histogram records duration observations lock-free and reports summary
// statistics with quantiles. Count, sum, min, and max are tracked exactly
// with atomics; quantiles come from the log-scale buckets and carry at most
// QuantileRelativeError. The commit pipeline uses one histogram per stage,
// so an operator can see where commit latency accumulates — and now at
// which percentile.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64 // nanoseconds
	// minPlus1 stores min+1 so the zero value means "no samples yet" and a
	// genuine 0ns minimum is still representable.
	minPlus1 atomic.Int64
	max      atomic.Int64
	buckets  [nBuckets]atomic.Int64
}

// Observe records one duration sample. Negative durations are ignored.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	v := int64(d)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.minPlus1.Load()
		if cur != 0 && cur <= v+1 {
			break
		}
		if h.minPlus1.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(uint64(v))].Add(1)
}

// HistogramSummary is a snapshot of one histogram's statistics. Count, Sum,
// Min, Max, and Mean are exact; the quantiles are bucket-derived and
// overestimate by at most QuantileRelativeError.
type HistogramSummary struct {
	Count int64
	Sum   time.Duration
	Min   time.Duration
	Max   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
}

// Summary returns the histogram's current statistics. Under concurrent
// Observe calls the snapshot is internally consistent to within the
// in-flight observations.
func (h *Histogram) Summary() HistogramSummary {
	s := HistogramSummary{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	if mp := h.minPlus1.Load(); mp > 0 {
		s.Min = time.Duration(mp - 1)
	}
	if s.Count > 0 {
		s.Mean = s.Sum / time.Duration(s.Count)
	}
	counts, total := h.snapshotBuckets()
	if total > 0 {
		s.P50 = quantile(counts, total, 0.50)
		s.P90 = quantile(counts, total, 0.90)
		s.P99 = quantile(counts, total, 0.99)
		s.P999 = quantile(counts, total, 0.999)
	}
	return s
}

// snapshotBuckets loads every bucket once and returns the copy plus its
// total (the total may trail Count by in-flight observations; quantile
// ranks are computed over the copy so they stay self-consistent).
func (h *Histogram) snapshotBuckets() ([nBuckets]int64, int64) {
	var counts [nBuckets]int64
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	return counts, total
}

// quantile walks the bucket snapshot to the q-th quantile (nearest rank)
// and reports the bucket's upper bound.
func quantile(counts [nBuckets]int64, total int64, q float64) time.Duration {
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range counts {
		seen += counts[i]
		if seen >= rank {
			return time.Duration(bucketMax(i))
		}
	}
	return time.Duration(bucketMax(nBuckets - 1))
}

// Registry is a named set of counters, gauges, and histograms.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// HistogramSummaries returns the current summary of every histogram.
func (r *Registry) HistogramSummaries() map[string]HistogramSummary {
	r.mu.Lock()
	hs := make([]*Histogram, 0, len(r.histograms))
	names := make([]string, 0, len(r.histograms))
	for name, h := range r.histograms {
		names = append(names, name)
		hs = append(hs, h)
	}
	r.mu.Unlock()
	out := make(map[string]HistogramSummary, len(hs))
	for i, h := range hs {
		out[names[i]] = h.Summary()
	}
	return out
}

// Snapshot returns the current value of every counter.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// GaugeSnapshot returns the current level of every gauge.
func (r *Registry) GaugeSnapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Format renders the registry as sorted "name value" lines: counters and
// gauges first, then per-histogram count, sum, mean, min, max, and the
// quantiles — everything the histogram tracks, so the text dump and the
// Prometheus exposition agree.
func (r *Registry) Format() string {
	snap := r.Snapshot()
	var sb strings.Builder
	for _, name := range sortedKeys(snap) {
		fmt.Fprintf(&sb, "%s %d\n", name, snap[name])
	}
	gauges := r.GaugeSnapshot()
	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(&sb, "%s %d\n", name, gauges[name])
	}
	sums := r.HistogramSummaries()
	for _, name := range sortedKeys(sums) {
		s := sums[name]
		fmt.Fprintf(&sb, "%s_count %d\n%s_sum_ns %d\n%s_mean_ns %d\n",
			name, s.Count, name, s.Sum.Nanoseconds(), name, s.Mean.Nanoseconds())
		fmt.Fprintf(&sb, "%s_min_ns %d\n%s_max_ns %d\n",
			name, s.Min.Nanoseconds(), name, s.Max.Nanoseconds())
		fmt.Fprintf(&sb, "%s_p50_ns %d\n%s_p90_ns %d\n%s_p99_ns %d\n%s_p999_ns %d\n",
			name, s.P50.Nanoseconds(), name, s.P90.Nanoseconds(),
			name, s.P99.Nanoseconds(), name, s.P999.Nanoseconds())
	}
	return sb.String()
}

// sanitizeName maps a metric name onto the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every other rune with '_'.
func sanitizeName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

// WritePrometheus renders the registry in Prometheus text exposition
// format. Every metric name is prefixed with prefix (use it to merge
// several registries — peer, orderer, transport — into one scrape without
// collisions) and sanitized to the exposition charset. Histograms are
// written as cumulative le-bucketed distributions in seconds, ascending,
// with only non-empty buckets materialized plus the mandatory +Inf.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	return r.WritePrometheusLabeled(w, prefix, nil)
}

// WritePrometheusLabeled is WritePrometheus with a constant label set
// attached to every sample — how a multi-channel host exposes one registry
// per channel on a single scrape (label {channel="..."}) without renaming
// metrics. Label names are sanitized to the metric charset, values are
// quoted; a nil or empty map degrades to the unlabeled form.
func (r *Registry) WritePrometheusLabeled(w io.Writer, prefix string, labels map[string]string) error {
	lbl := formatLabels(labels)
	snap := r.Snapshot()
	for _, name := range sortedKeys(snap) {
		n := sanitizeName(prefix + name)
		if _, err := fmt.Fprintf(w, "# HELP %s Total count of %s events.\n# TYPE %s counter\n%s%s %d\n",
			n, name, n, n, lbl.bare, snap[name]); err != nil {
			return err
		}
	}
	gauges := r.GaugeSnapshot()
	for _, name := range sortedKeys(gauges) {
		n := sanitizeName(prefix + name)
		if _, err := fmt.Fprintf(w, "# HELP %s Current level of %s.\n# TYPE %s gauge\n%s%s %d\n",
			n, name, n, n, lbl.bare, gauges[name]); err != nil {
			return err
		}
	}
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()
	for _, name := range sortedKeys(hists) {
		if err := hists[name].writePrometheus(w, sanitizeName(prefix+name), name, lbl); err != nil {
			return err
		}
	}
	return nil
}

// labelSet pre-renders a constant label set in the two forms the exposition
// needs: appended to a bare metric name (`{k="v"}`), and merged before an
// le label inside an existing brace pair (`k="v",`).
type labelSet struct {
	bare  string
	inner string
}

// formatLabels renders labels sorted by name for stable scrapes.
func formatLabels(labels map[string]string) labelSet {
	if len(labels) == 0 {
		return labelSet{}
	}
	parts := make([]string, 0, len(labels))
	for _, k := range sortedKeys(labels) {
		parts = append(parts, fmt.Sprintf("%s=%q", sanitizeName(k), labels[k]))
	}
	joined := strings.Join(parts, ",")
	return labelSet{bare: "{" + joined + "}", inner: joined + ","}
}

// writePrometheus renders one histogram as a Prometheus histogram family.
func (h *Histogram) writePrometheus(w io.Writer, name, rawName string, lbl labelSet) error {
	counts, total := h.snapshotBuckets()
	if _, err := fmt.Fprintf(w, "# HELP %s Latency distribution of %s in seconds.\n# TYPE %s histogram\n",
		name, rawName, name); err != nil {
		return err
	}
	var cum int64
	for i := range counts {
		if counts[i] == 0 {
			continue
		}
		cum += counts[i]
		le := float64(bucketMax(i)+1) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, lbl.inner, formatFloat(le), cum); err != nil {
			return err
		}
	}
	sum := float64(h.sum.Load()) / 1e9
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n%s_sum%s %s\n%s_count%s %d\n",
		name, lbl.inner, total, name, lbl.bare, formatFloat(sum), name, lbl.bare, total); err != nil {
		return err
	}
	return nil
}

// formatFloat renders a float the way Prometheus exposition expects
// (shortest representation, no exponent for typical latencies).
func formatFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// Well-known metric names used across the system.
const (
	EndorsementsServed = "endorsements_served"
	EndorsementsFailed = "endorsements_failed"
	BlocksCommitted    = "blocks_committed"
	TxValidated        = "tx_validated"
	TxInvalidated      = "tx_invalidated"
	QueriesServed      = "queries_served"
	BatchesCut         = "batches_cut"
	EnvelopesOrdered   = "envelopes_ordered"
	EnvelopesRejected  = "envelopes_rejected"
	GossipBlocksPulled = "gossip_blocks_pulled"
	// StateShardContention counts state-store shard lock acquisitions that
	// had to wait behind another holder — the number an operator watches to
	// decide whether the shard count still fits the workload.
	StateShardContention = "state_shard_contention"

	// Gossip protocol coverage: anti-entropy rounds run, blocks delivered
	// by pull (a member fetching a neighbour's tail) vs push (a block
	// delivered to a remote peer's transport server).
	GossipRounds         = "gossip_rounds"
	GossipPullDeliveries = "gossip_pull_deliveries"
	GossipPushDeliveries = "gossip_push_deliveries"

	// Transport coverage: framed messages and bytes in each direction,
	// successful redials of a previously-established connection, and hello
	// handshakes that failed.
	TransportFramesSent        = "transport_frames_sent"
	TransportFramesReceived    = "transport_frames_received"
	TransportBytesSent         = "transport_bytes_sent"
	TransportBytesReceived     = "transport_bytes_received"
	TransportReconnects        = "transport_reconnects"
	TransportHandshakeFailures = "transport_handshake_failures"
)

// Well-known gauge names.
const (
	// EndorseInflight is the number of endorsement requests currently being
	// simulated — the endorsement queue depth.
	EndorseInflight = "endorse_inflight"
	// EndorsePeerLatency is the prefix of the gateway's per-endorser latency
	// gauges (endorse_peer_latency_<endorser>): an EWMA of that endorser's
	// proposal round-trip in nanoseconds. The family is bounded by the
	// channel's endorser set. A persistently high reading identifies the
	// straggler the quorum early-return is routing around.
	EndorsePeerLatency = "endorse_peer_latency"
)

// Well-known histogram names: per-block latency of each commit-pipeline
// stage, per-operation latency of the sharded state store, per-RPC latency
// of the peer transport, and the gossip convergence lag.
const (
	CommitStagePreval  = "commit_stage_preval"
	CommitStageMVCC    = "commit_stage_mvcc"
	CommitStagePersist = "commit_stage_persist"

	// CommitMVCCGraphBuild is the per-block latency of building the
	// conflict graph over the block's rwsets (parallel MVCC only).
	CommitMVCCGraphBuild = "commit_stage_mvcc_graph_build"
	// CommitMVCCWaveWidth records the width (transaction count) of each
	// scheduled wavefront, stored in the histogram's nanosecond slots
	// (1 tx == 1ns) like GossipConvergenceLag — read the quantiles as
	// "transactions per wave". Count is the number of waves; a mean near
	// the block size means the block was conflict-free, a mean near 1
	// means it degenerated to the serial walk.
	CommitMVCCWaveWidth = "commit_stage_mvcc_wave_width"

	StateGet   = "state_get"
	StateScan  = "state_scan"
	StateApply = "state_apply"

	// TransportRPC is the client-observed round-trip latency of one framed
	// request/response exchange.
	TransportRPC = "transport_rpc"
	// GossipConvergenceLag records, at each successful pull, how many
	// blocks the puller was behind its source. The samples are block
	// counts stored in the histogram's nanosecond slots (1 block == 1ns),
	// not durations — read the quantiles as "blocks behind".
	GossipConvergenceLag = "gossip_convergence_lag"
)
