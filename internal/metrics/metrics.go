// Package metrics provides the lightweight operational counters exposed by
// peers and the ordering service — the numbers an operator of the paper's
// edge deployment would scrape (transactions validated/invalidated,
// endorsements served, blocks cut). Counters are safe for concurrent use
// and snapshot as a plain map for reporting.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored; counters are monotonic).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry is a named set of counters.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Snapshot returns the current value of every counter.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Format renders the snapshot as sorted "name value" lines.
func (r *Registry) Format() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		fmt.Fprintf(&sb, "%s %d\n", name, snap[name])
	}
	return sb.String()
}

// Well-known metric names used across the system.
const (
	EndorsementsServed = "endorsements_served"
	EndorsementsFailed = "endorsements_failed"
	BlocksCommitted    = "blocks_committed"
	TxValidated        = "tx_validated"
	TxInvalidated      = "tx_invalidated"
	QueriesServed      = "queries_served"
	BatchesCut         = "batches_cut"
	EnvelopesOrdered   = "envelopes_ordered"
	GossipBlocksPulled = "gossip_blocks_pulled"
)
