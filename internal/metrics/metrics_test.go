package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
}

func TestRegistryReturnsSameCounter(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Error("Counter returned distinct instances for one name")
	}
	a.Inc()
	if r.Snapshot()["x"] != 1 {
		t.Errorf("snapshot = %v", r.Snapshot())
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*each {
		t.Errorf("shared = %d, want %d", got, workers*each)
	}
}

func TestFormatSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra").Inc()
	r.Counter("alpha").Add(2)
	out := r.Format()
	if !strings.Contains(out, "alpha 2") || !strings.Contains(out, "zebra 1") {
		t.Errorf("format = %q", out)
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zebra") {
		t.Error("format not sorted")
	}
}

func TestHistogramSummary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(CommitStagePreval)
	if h != r.Histogram(CommitStagePreval) {
		t.Error("Histogram returned distinct instances for one name")
	}
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	h.Observe(-time.Millisecond) // ignored
	s := h.Summary()
	if s.Count != 2 || s.Sum != 6*time.Millisecond ||
		s.Min != 2*time.Millisecond || s.Max != 4*time.Millisecond ||
		s.Mean != 3*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
	out := r.Format()
	if !strings.Contains(out, CommitStagePreval+"_count 2") {
		t.Errorf("format lacks histogram lines: %q", out)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Summary(); s.Count != workers*each {
		t.Errorf("count = %d, want %d", s.Count, workers*each)
	}
}

// Property: a counter's value equals the sum of positive deltas applied.
func TestQuickCounterSum(t *testing.T) {
	f := func(deltas []int16) bool {
		var c Counter
		var want int64
		for _, d := range deltas {
			c.Add(int64(d))
			if d > 0 {
				want += int64(d)
			}
		}
		return c.Value() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
