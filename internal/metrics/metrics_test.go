package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
}

func TestRegistryReturnsSameCounter(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Error("Counter returned distinct instances for one name")
	}
	a.Inc()
	if r.Snapshot()["x"] != 1 {
		t.Errorf("snapshot = %v", r.Snapshot())
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*each {
		t.Errorf("shared = %d, want %d", got, workers*each)
	}
}

func TestFormatSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra").Inc()
	r.Counter("alpha").Add(2)
	out := r.Format()
	if !strings.Contains(out, "alpha 2") || !strings.Contains(out, "zebra 1") {
		t.Errorf("format = %q", out)
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zebra") {
		t.Error("format not sorted")
	}
}

// Property: a counter's value equals the sum of positive deltas applied.
func TestQuickCounterSum(t *testing.T) {
	f := func(deltas []int16) bool {
		var c Counter
		var want int64
		for _, d := range deltas {
			c.Add(int64(d))
			if d > 0 {
				want += int64(d)
			}
		}
		return c.Value() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
