package identity

import (
	"errors"
	"sync"
	"testing"
)

func newTestIdentity(t *testing.T, name string) (*SigningIdentity, *Identity) {
	t.Helper()
	ca, err := NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := ca.Enroll(name, RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	return s, s.Identity()
}

func TestVerifyCachedHitSkipsWorkAndCharge(t *testing.T) {
	signer, id := newTestIdentity(t, "alice")
	cache := NewVerifyCache(64)
	msg := []byte("the message")
	sig, err := signer.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	charges := 0
	onMiss := func() { charges++ }

	if err := id.VerifyCached(cache, msg, sig, onMiss); err != nil {
		t.Fatalf("first verify: %v", err)
	}
	if charges != 1 {
		t.Fatalf("first verify charged %d times, want 1", charges)
	}
	// Second verification of the identical triple is a cache hit: no ECDSA
	// work, and crucially no modeled-hardware charge either.
	if err := id.VerifyCached(cache, msg, sig, onMiss); err != nil {
		t.Fatalf("cached verify: %v", err)
	}
	if charges != 1 {
		t.Fatalf("cached verify charged (total %d), want no new charge", charges)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestVerifyCachedFailureIsNotCached(t *testing.T) {
	signer, id := newTestIdentity(t, "alice")
	cache := NewVerifyCache(64)
	msg := []byte("the message")
	sig, err := signer.Sign([]byte("a different message"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := id.VerifyCached(cache, msg, sig, nil); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("attempt %d: err = %v, want ErrBadSignature", i, err)
		}
	}
	if st := cache.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("failed verifications polluted the cache: %+v", st)
	}
}

func TestVerifyCachedKeyBindsIdentity(t *testing.T) {
	signerA, idA := newTestIdentity(t, "alice")
	_, idB := newTestIdentity(t, "bob")
	cache := NewVerifyCache(64)
	msg := []byte("shared message")
	sig, err := signerA.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := idA.VerifyCached(cache, msg, sig, nil); err != nil {
		t.Fatal(err)
	}
	// Bob presenting Alice's (msg, sig) must not hit Alice's cache entry.
	if err := idB.VerifyCached(cache, msg, sig, nil); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("cross-identity verify = %v, want ErrBadSignature", err)
	}
}

func TestVerifyCacheEvictsLRU(t *testing.T) {
	signer, id := newTestIdentity(t, "alice")
	cache := NewVerifyCache(2)
	sign := func(s string) ([]byte, []byte) {
		msg := []byte(s)
		sig, err := signer.Sign(msg)
		if err != nil {
			t.Fatal(err)
		}
		return msg, sig
	}
	m1, s1 := sign("one")
	m2, s2 := sign("two")
	m3, s3 := sign("three")
	for _, p := range []struct{ m, s []byte }{{m1, s1}, {m2, s2}} {
		if err := id.VerifyCached(cache, p.m, p.s, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Touch m1 so m2 becomes least recently used, then overflow.
	if err := id.VerifyCached(cache, m1, s1, nil); err != nil {
		t.Fatal(err)
	}
	if err := id.VerifyCached(cache, m3, s3, nil); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want capacity 2", st.Entries)
	}
	// m2 was LRU when m3 arrived, so it must miss; re-inserting it then
	// evicts m1, while m3 (still recent) survives both turnovers.
	charges := 0
	if err := id.VerifyCached(cache, m2, s2, func() { charges++ }); err != nil {
		t.Fatal(err)
	}
	if charges != 1 {
		t.Fatal("evicted entry unexpectedly still cached")
	}
	if err := id.VerifyCached(cache, m3, s3, func() { charges++ }); err != nil {
		t.Fatal(err)
	}
	if charges != 1 {
		t.Fatal("recently used entry was evicted")
	}
}

func TestVerifyCachedNilCacheDegradesToVerify(t *testing.T) {
	signer, id := newTestIdentity(t, "alice")
	msg := []byte("msg")
	sig, err := signer.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	charges := 0
	for i := 0; i < 2; i++ {
		if err := id.VerifyCached(nil, msg, sig, func() { charges++ }); err != nil {
			t.Fatal(err)
		}
	}
	if charges != 2 {
		t.Fatalf("nil cache charged %d times, want every call", charges)
	}
}

func TestVerifyCacheConcurrent(t *testing.T) {
	signer, id := newTestIdentity(t, "alice")
	cache := NewVerifyCache(8)
	msgs := make([][]byte, 16)
	sigs := make([][]byte, 16)
	for i := range msgs {
		msgs[i] = []byte{byte(i)}
		sig, err := signer.Sign(msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				j := (g + i) % len(msgs)
				if err := id.VerifyCached(cache, msgs[j], sigs[j], nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := cache.Stats(); st.Entries > 8 {
		t.Fatalf("cache exceeded capacity: %+v", st)
	}
}

func TestMSPCarriesVerifyCache(t *testing.T) {
	ca, err := NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	msp := NewMSP(ca)
	if msp.VerifyCache() == nil {
		t.Fatal("MSP has no verification cache")
	}
}
