package identity

import "testing"

func BenchmarkSign(b *testing.B) {
	ca, err := NewCA("Org1")
	if err != nil {
		b.Fatal(err)
	}
	sid, err := ca.Enroll("bench", RoleClient)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sid.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	ca, err := NewCA("Org1")
	if err != nil {
		b.Fatal(err)
	}
	sid, err := ca.Enroll("bench", RoleClient)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 1024)
	sig, err := sid.Sign(msg)
	if err != nil {
		b.Fatal(err)
	}
	id := sid.Identity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := id.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMSPDeserialize(b *testing.B) {
	ca, err := NewCA("Org1")
	if err != nil {
		b.Fatal(err)
	}
	sid, err := ca.Enroll("bench", RoleClient)
	if err != nil {
		b.Fatal(err)
	}
	msp := NewMSP(ca)
	raw := sid.Serialize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := msp.Deserialize(raw); err != nil {
			b.Fatal(err)
		}
	}
}
