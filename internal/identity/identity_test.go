package identity

import (
	"bytes"
	"crypto/x509"
	"strings"
	"testing"
	"time"
)

func newTestCA(t *testing.T, org string) *CA {
	t.Helper()
	ca, err := NewCA(org)
	if err != nil {
		t.Fatalf("NewCA(%q): %v", org, err)
	}
	return ca
}

func TestEnrollAndSignVerify(t *testing.T) {
	ca := newTestCA(t, "Org1")
	id, err := ca.Enroll("client0", RoleClient)
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if got, want := id.Org(), "Org1"; got != want {
		t.Errorf("Org() = %q, want %q", got, want)
	}
	if got, want := id.MSPID(), "Org1MSP"; got != want {
		t.Errorf("MSPID() = %q, want %q", got, want)
	}
	msg := []byte("provenance record payload")
	sig, err := id.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := id.Identity().Verify(msg, sig); err != nil {
		t.Errorf("Verify valid sig: %v", err)
	}
	if err := id.Identity().Verify([]byte("tampered"), sig); err == nil {
		t.Error("Verify tampered message succeeded, want failure")
	}
}

func TestDuplicateEnrollment(t *testing.T) {
	ca := newTestCA(t, "Org1")
	if _, err := ca.Enroll("peer0", RolePeer); err != nil {
		t.Fatalf("first Enroll: %v", err)
	}
	_, err := ca.Enroll("peer0", RolePeer)
	if err == nil {
		t.Fatal("duplicate Enroll succeeded, want error")
	}
	if !strings.Contains(err.Error(), "already issued") {
		t.Errorf("error = %v, want mention of already issued", err)
	}
}

func TestMSPDeserializeRoundTrip(t *testing.T) {
	ca1 := newTestCA(t, "Org1")
	ca2 := newTestCA(t, "Org2")
	msp := NewMSP(ca1, ca2)

	tests := []struct {
		name string
		ca   *CA
		role Role
	}{
		{"client", ca1, RoleClient},
		{"peer", ca1, RolePeer},
		{"orderer", ca2, RoleOrderer},
		{"admin", ca2, RoleAdmin},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sid, err := tt.ca.Enroll(tt.name, tt.role)
			if err != nil {
				t.Fatalf("Enroll: %v", err)
			}
			got, err := msp.Deserialize(sid.Serialize())
			if err != nil {
				t.Fatalf("Deserialize: %v", err)
			}
			if got.ID() != tt.name {
				t.Errorf("ID = %q, want %q", got.ID(), tt.name)
			}
			if got.Role() != tt.role {
				t.Errorf("Role = %v, want %v", got.Role(), tt.role)
			}
			if got.Org() != tt.ca.Org() {
				t.Errorf("Org = %q, want %q", got.Org(), tt.ca.Org())
			}
		})
	}
}

func TestMSPRejectsUnknownOrg(t *testing.T) {
	ca1 := newTestCA(t, "Org1")
	rogue := newTestCA(t, "Mallory")
	msp := NewMSP(ca1)
	sid, err := rogue.Enroll("evil", RoleClient)
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if _, err := msp.Deserialize(sid.Serialize()); err == nil {
		t.Fatal("Deserialize of unknown org succeeded, want error")
	}
}

func TestMSPRejectsForgedCert(t *testing.T) {
	// A rogue CA that reuses a trusted org name must still be rejected,
	// because its issuing key differs from the trusted CA's.
	trusted := newTestCA(t, "Org1")
	rogue := newTestCA(t, "Org1")
	msp := NewMSP(trusted)
	sid, err := rogue.Enroll("imposter", RolePeer)
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	_, err = msp.Deserialize(sid.Serialize())
	if err == nil {
		t.Fatal("Deserialize of forged cert succeeded, want error")
	}
}

func TestMSPRejectsMalformed(t *testing.T) {
	msp := NewMSP(newTestCA(t, "Org1"))
	for _, raw := range [][]byte{nil, {}, []byte("not json"), []byte(`{"mspid":"x","certDer":"aGk="}`)} {
		if _, err := msp.Deserialize(raw); err == nil {
			t.Errorf("Deserialize(%q) succeeded, want error", raw)
		}
	}
}

func TestRevocation(t *testing.T) {
	ca := newTestCA(t, "Org1")
	msp := NewMSP(ca)
	sid, err := ca.Enroll("client1", RoleClient)
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if _, err := msp.Deserialize(sid.Serialize()); err != nil {
		t.Fatalf("Deserialize before revoke: %v", err)
	}
	ca.Revoke("client1")
	if _, err := msp.Deserialize(sid.Serialize()); err == nil {
		t.Fatal("Deserialize after revoke succeeded, want error")
	}
}

func TestExpiredCertRejected(t *testing.T) {
	ca := newTestCA(t, "Org1")
	sid, err := ca.Enroll("client1", RoleClient)
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	// Shift the CA's clock far into the future: cert validity is 5 years.
	ca.now = func() time.Time { return time.Now().Add(6 * 365 * 24 * time.Hour) }
	msp := NewMSP(ca)
	if _, err := msp.Deserialize(sid.Serialize()); err == nil {
		t.Fatal("Deserialize of expired cert succeeded, want error")
	}
}

func TestCertPEMParseable(t *testing.T) {
	ca := newTestCA(t, "Org1")
	sid, err := ca.Enroll("client0", RoleClient)
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	pemBytes := sid.CertPEM()
	if !bytes.Contains(pemBytes, []byte("BEGIN CERTIFICATE")) {
		t.Fatalf("CertPEM missing PEM header: %s", pemBytes)
	}
	if !bytes.Contains(ca.CertPEM(), []byte("BEGIN CERTIFICATE")) {
		t.Fatal("CA CertPEM missing PEM header")
	}
}

func TestSubjectFormat(t *testing.T) {
	ca := newTestCA(t, "Org1")
	sid, err := ca.Enroll("sensor-7", RoleClient)
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	got := sid.Identity().Subject()
	want := "x509::CN=sensor-7,O=Org1,OU=client"
	if got != want {
		t.Errorf("Subject = %q, want %q", got, want)
	}
}

func TestRoleString(t *testing.T) {
	tests := []struct {
		role Role
		want string
	}{
		{RoleClient, "client"}, {RolePeer, "peer"},
		{RoleOrderer, "orderer"}, {RoleAdmin, "admin"}, {Role(99), "role(99)"},
	}
	for _, tt := range tests {
		if got := tt.role.String(); got != tt.want {
			t.Errorf("Role(%d).String() = %q, want %q", tt.role, got, tt.want)
		}
	}
}

func TestVerifyCertDirect(t *testing.T) {
	ca := newTestCA(t, "Org1")
	sid, err := ca.Enroll("p", RolePeer)
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	cert, err := x509.ParseCertificate(sid.certDER)
	if err != nil {
		t.Fatalf("ParseCertificate: %v", err)
	}
	if err := ca.VerifyCert(cert); err != nil {
		t.Errorf("VerifyCert: %v", err)
	}
}

func TestMSPOrgs(t *testing.T) {
	msp := NewMSP(newTestCA(t, "Org1"))
	msp.AddCA(newTestCA(t, "Org2"))
	orgs := msp.Orgs()
	if len(orgs) != 2 {
		t.Fatalf("Orgs() = %v, want 2 entries", orgs)
	}
	seen := map[string]bool{}
	for _, o := range orgs {
		seen[o] = true
	}
	if !seen["Org1"] || !seen["Org2"] {
		t.Errorf("Orgs() = %v, want Org1 and Org2", orgs)
	}
}
