// Package identity implements the membership service provider (MSP)
// substrate: a certificate authority, ECDSA P-256 X.509 signing identities,
// and signature verification. It mirrors the role Fabric's MSP plays for
// HyperProv — every provenance record is bound to the X.509 certificate of
// the client that created it.
package identity

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/json"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"
)

// Role classifies what a certificate is allowed to do inside an org.
type Role int

// Certificate roles, mirroring Fabric's MSP principal classification.
const (
	RoleClient Role = iota + 1
	RolePeer
	RoleOrderer
	RoleAdmin
)

// String returns the textual form of the role used in certificate OUs.
func (r Role) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RolePeer:
		return "peer"
	case RoleOrderer:
		return "orderer"
	case RoleAdmin:
		return "admin"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Errors returned by this package.
var (
	ErrUnknownOrg         = errors.New("identity: unknown organization")
	ErrBadSignature       = errors.New("identity: signature verification failed")
	ErrCertNotSignedByCA  = errors.New("identity: certificate not signed by org CA")
	ErrCertExpired        = errors.New("identity: certificate outside validity window")
	ErrMalformedIdentity  = errors.New("identity: malformed serialized identity")
	ErrRevoked            = errors.New("identity: certificate revoked")
	ErrDuplicateEnrollKey = errors.New("identity: enrollment id already issued")
)

// CA is a self-signed certificate authority for one organization. It issues
// signing identities to clients, peers, and orderers, and verifies that
// serialized identities presented on the wire chain back to it.
type CA struct {
	mu      sync.RWMutex
	org     string
	key     *ecdsa.PrivateKey
	cert    *x509.Certificate
	certDER []byte
	serial  int64
	issued  map[string]bool // enrollment id -> issued
	revoked map[string]bool // enrollment id -> revoked
	now     func() time.Time
}

// NewCA creates a self-signed CA for the given organization name.
func NewCA(org string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("identity: generate CA key: %w", err)
	}
	now := time.Now()
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject: pkix.Name{
			CommonName:   "ca." + org,
			Organization: []string{org},
		},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("identity: self-sign CA cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("identity: parse CA cert: %w", err)
	}
	return &CA{
		org:     org,
		key:     key,
		cert:    cert,
		certDER: der,
		serial:  1,
		issued:  make(map[string]bool),
		revoked: make(map[string]bool),
		now:     time.Now,
	}, nil
}

// NewVerifyingCA reconstructs a verification-only CA from its certificate
// PEM: it can verify certificates issued by the real CA but holds no
// private key, so Enroll fails. This is how a remote process joins a
// network's trust domain over the wire — the peer transport's handshake
// ships CA certificates, never keys.
func NewVerifyingCA(certPEM []byte) (*CA, error) {
	block, _ := pem.Decode(certPEM)
	if block == nil || block.Type != "CERTIFICATE" {
		return nil, errors.New("identity: no certificate PEM block")
	}
	cert, err := x509.ParseCertificate(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("identity: parse CA cert: %w", err)
	}
	if !cert.IsCA {
		return nil, errors.New("identity: certificate is not a CA")
	}
	if len(cert.Subject.Organization) == 0 {
		return nil, errors.New("identity: CA cert carries no organization")
	}
	return &CA{
		org:     cert.Subject.Organization[0],
		cert:    cert,
		certDER: block.Bytes,
		issued:  make(map[string]bool),
		revoked: make(map[string]bool),
		now:     time.Now,
	}, nil
}

// Org returns the organization name this CA serves.
func (ca *CA) Org() string { return ca.org }

// CertPEM returns the CA certificate in PEM form.
func (ca *CA) CertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.certDER})
}

// Enroll issues a new signing identity with the given enrollment id and role.
// Enrollment ids must be unique within the org.
func (ca *CA) Enroll(enrollID string, role Role) (*SigningIdentity, error) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if ca.key == nil {
		return nil, fmt.Errorf("identity: CA %s is verification-only (no private key)", ca.org)
	}
	if ca.issued[enrollID] {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateEnrollKey, enrollID)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("identity: generate key for %q: %w", enrollID, err)
	}
	ca.serial++
	now := ca.now()
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(ca.serial),
		Subject: pkix.Name{
			CommonName:         enrollID,
			Organization:       []string{ca.org},
			OrganizationalUnit: []string{role.String()},
		},
		NotBefore: now.Add(-time.Hour),
		NotAfter:  now.Add(5 * 365 * 24 * time.Hour),
		KeyUsage:  x509.KeyUsageDigitalSignature,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return nil, fmt.Errorf("identity: issue cert for %q: %w", enrollID, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("identity: parse issued cert: %w", err)
	}
	ca.issued[enrollID] = true
	return &SigningIdentity{
		org:     ca.org,
		id:      enrollID,
		role:    role,
		key:     key,
		cert:    cert,
		certDER: der,
	}, nil
}

// Revoke marks an enrollment id as revoked; subsequently presented
// certificates for that id fail verification.
func (ca *CA) Revoke(enrollID string) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	ca.revoked[enrollID] = true
}

// VerifyCert checks that the certificate was issued by this CA, is inside
// its validity window, and has not been revoked.
func (ca *CA) VerifyCert(cert *x509.Certificate) error {
	if err := cert.CheckSignatureFrom(ca.cert); err != nil {
		return fmt.Errorf("%w: %v", ErrCertNotSignedByCA, err)
	}
	now := ca.now()
	if now.Before(cert.NotBefore) || now.After(cert.NotAfter) {
		return ErrCertExpired
	}
	ca.mu.RLock()
	revoked := ca.revoked[cert.Subject.CommonName]
	ca.mu.RUnlock()
	if revoked {
		return fmt.Errorf("%w: %q", ErrRevoked, cert.Subject.CommonName)
	}
	return nil
}

// SigningIdentity is a private key + certificate pair able to sign messages.
type SigningIdentity struct {
	org     string
	id      string
	role    Role
	key     *ecdsa.PrivateKey
	cert    *x509.Certificate
	certDER []byte
}

// Org returns the owning organization.
func (s *SigningIdentity) Org() string { return s.org }

// ID returns the enrollment id (certificate CN).
func (s *SigningIdentity) ID() string { return s.id }

// Role returns the role baked into the certificate.
func (s *SigningIdentity) Role() Role { return s.role }

// MSPID returns the Fabric-style MSP identifier ("Org1MSP" style).
func (s *SigningIdentity) MSPID() string { return s.org + "MSP" }

// Sign signs the SHA-256 digest of msg with the identity's private key.
func (s *SigningIdentity) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := ecdsa.SignASN1(rand.Reader, s.key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("identity: sign: %w", err)
	}
	return sig, nil
}

// Serialize returns the wire form of the identity (MSP id + cert DER),
// matching Fabric's SerializedIdentity proto.
func (s *SigningIdentity) Serialize() []byte {
	b, _ := json.Marshal(serializedIdentity{MSPID: s.MSPID(), CertDER: s.certDER})
	return b
}

// Identity returns the public (verification-only) half.
func (s *SigningIdentity) Identity() *Identity {
	return &Identity{org: s.org, id: s.id, role: s.role, cert: s.cert, certDER: s.certDER}
}

// CertPEM returns the identity certificate in PEM form; this is what
// HyperProv stores in each provenance record's creator field.
func (s *SigningIdentity) CertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: s.certDER})
}

type serializedIdentity struct {
	MSPID   string `json:"mspid"`
	CertDER []byte `json:"certDer"`
}

// Identity is the verification-only view of a member: certificate plus
// parsed org/role attributes.
type Identity struct {
	org     string
	id      string
	role    Role
	cert    *x509.Certificate
	certDER []byte
}

// Org returns the owning organization.
func (id *Identity) Org() string { return id.org }

// ID returns the enrollment id (certificate CN).
func (id *Identity) ID() string { return id.id }

// Role returns the role parsed from the certificate OU.
func (id *Identity) Role() Role { return id.role }

// MSPID returns the MSP identifier.
func (id *Identity) MSPID() string { return id.org + "MSP" }

// Verify checks that sig is a valid signature over msg by this identity.
func (id *Identity) Verify(msg, sig []byte) error {
	digest := sha256.Sum256(msg)
	if !ecdsa.VerifyASN1(id.cert.PublicKey.(*ecdsa.PublicKey), digest[:], sig) {
		return ErrBadSignature
	}
	return nil
}

// Subject renders the identity the way HyperProv records it in the creator
// field of a provenance record.
func (id *Identity) Subject() string {
	return fmt.Sprintf("x509::CN=%s,O=%s,OU=%s", id.id, id.org, id.role)
}

// MSP verifies serialized identities against the set of known org CAs. It is
// shared by peers, orderers, and clients.
type MSP struct {
	mu     sync.RWMutex
	cas    map[string]*CA // org -> CA
	verify *VerifyCache
}

// NewMSP creates an MSP trusting the given CAs. Every MSP carries a shared
// signature-verification cache (see VerifyCache) so all components resolving
// identities through it — gateway checks, commit validation, gossip
// redelivery — pool their verification work.
func NewMSP(cas ...*CA) *MSP {
	m := &MSP{
		cas:    make(map[string]*CA, len(cas)),
		verify: NewVerifyCache(0),
	}
	for _, ca := range cas {
		m.cas[ca.org] = ca
	}
	return m
}

// VerifyCache returns the MSP's shared signature-verification cache.
func (m *MSP) VerifyCache() *VerifyCache { return m.verify }

// AddCA registers an additional trusted org CA.
func (m *MSP) AddCA(ca *CA) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cas[ca.org] = ca
}

// Orgs lists the trusted organization names.
func (m *MSP) Orgs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.cas))
	for org := range m.cas {
		out = append(out, org)
	}
	return out
}

// Deserialize parses and verifies a serialized identity: the certificate
// must chain to a trusted CA and be within validity.
func (m *MSP) Deserialize(raw []byte) (*Identity, error) {
	var si serializedIdentity
	if err := json.Unmarshal(raw, &si); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedIdentity, err)
	}
	cert, err := x509.ParseCertificate(si.CertDER)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedIdentity, err)
	}
	org := ""
	if len(cert.Subject.Organization) > 0 {
		org = cert.Subject.Organization[0]
	}
	m.mu.RLock()
	ca, ok := m.cas[org]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownOrg, org)
	}
	if err := ca.VerifyCert(cert); err != nil {
		return nil, err
	}
	return &Identity{
		org:     org,
		id:      cert.Subject.CommonName,
		role:    parseRole(cert),
		cert:    cert,
		certDER: si.CertDER,
	}, nil
}

func parseRole(cert *x509.Certificate) Role {
	if len(cert.Subject.OrganizationalUnit) == 0 {
		return RoleClient
	}
	switch cert.Subject.OrganizationalUnit[0] {
	case "peer":
		return RolePeer
	case "orderer":
		return RoleOrderer
	case "admin":
		return RoleAdmin
	default:
		return RoleClient
	}
}
