package identity

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// DefaultVerifyCacheCap is the entry bound used when a VerifyCache is built
// with a non-positive capacity. At 32 key bytes plus list overhead per entry
// the default costs about 2 MiB per process — small next to the ECDSA
// verifications it saves.
const DefaultVerifyCacheCap = 16384

// VerifyCache is a bounded LRU of signature verifications that already
// succeeded. Fabric-style pipelines verify the same (message, signature,
// certificate) triple repeatedly — the committing peer re-checks what the
// gateway already checked, and gossip redelivery re-checks whole blocks — so
// remembering successful verifications converts steady-state re-validation
// into a hash lookup.
//
// Only successes are cached. A cached entry proves the exact triple verified
// once, which is as good as verifying it again: ECDSA verification is
// deterministic in (key, digest, signature). Failures are never cached, so
// an attacker cannot poison the cache; at worst a miss costs one real
// verification, exactly the pre-cache behaviour.
//
// The zero value is not usable; build with NewVerifyCache. All methods are
// safe for concurrent use.
type VerifyCache struct {
	mu      sync.Mutex
	cap     int
	entries map[[sha256.Size]byte]*list.Element
	order   *list.List // front = most recently used; values are key arrays
	hits    uint64
	misses  uint64
}

// VerifyCacheStats is a snapshot of cache effectiveness counters.
type VerifyCacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// NewVerifyCache builds a cache bounded to capacity entries (the default
// when capacity is not positive).
func NewVerifyCache(capacity int) *VerifyCache {
	if capacity <= 0 {
		capacity = DefaultVerifyCacheCap
	}
	return &VerifyCache{
		cap:     capacity,
		entries: make(map[[sha256.Size]byte]*list.Element, capacity),
		order:   list.New(),
	}
}

// verifyKey binds certificate, message, and signature into one cache key.
// Each field is length-prefixed before hashing so no two distinct triples
// can collide by sliding bytes across field boundaries.
func verifyKey(certDER, msg, sig []byte) [sha256.Size]byte {
	h := sha256.New()
	var n [8]byte
	for _, field := range [][]byte{certDER, msg, sig} {
		binary.BigEndian.PutUint64(n[:], uint64(len(field)))
		h.Write(n[:])
		h.Write(field)
	}
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k
}

// lookup reports whether k is cached, refreshing its recency on hit.
func (c *VerifyCache) lookup(k [sha256.Size]byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return false
	}
	c.order.MoveToFront(el)
	c.hits++
	return true
}

// insert records a successful verification, evicting the least recently
// used entry when full.
func (c *VerifyCache) insert(k [sha256.Size]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(k)
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.([sha256.Size]byte))
	}
}

// Stats returns a snapshot of the hit/miss counters and current size.
func (c *VerifyCache) Stats() VerifyCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return VerifyCacheStats{Hits: c.hits, Misses: c.misses, Entries: c.order.Len()}
}

// VerifyCached checks sig over msg like Verify, consulting the cache first.
// On a hit it returns immediately — skipping both the ECDSA verification
// and onMiss. On a miss it invokes onMiss (if non-nil) before verifying;
// callers use the hook to charge modeled verification hardware only for
// work that actually happens. A nil cache degrades to plain Verify with the
// onMiss charge, so call sites need no branching.
func (id *Identity) VerifyCached(cache *VerifyCache, msg, sig []byte, onMiss func()) error {
	if cache == nil {
		if onMiss != nil {
			onMiss()
		}
		return id.Verify(msg, sig)
	}
	k := verifyKey(id.certDER, msg, sig)
	if cache.lookup(k) {
		return nil
	}
	if onMiss != nil {
		onMiss()
	}
	if err := id.Verify(msg, sig); err != nil {
		return err
	}
	cache.insert(k)
	return nil
}
