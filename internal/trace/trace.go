// Package trace provides the lightweight transaction-lifecycle tracing the
// admin endpoint's /tracez view is built on. A trace is rooted at a
// transaction ID (no separate trace-ID allocation: the txID already crosses
// every hop of the execute–order–validate flow) and accumulates one span per
// pipeline stage — propose, endorse, order, gossip send/deliver, and the
// three commit stages — each with a start time and duration. Remote hops
// join the same trace by carrying the txID in the transport frame header.
//
// The Recorder is bounded-memory by construction: live traces are capped
// and FIFO-evicted, spans per trace are capped, and completed traces land
// in a fixed recent ring plus a fixed top-K slow list. A nil *Recorder is a
// valid no-op recorder, so every call site can thread an optional tracer
// without branching.
package trace

import (
	"sort"
	"sync"
	"time"
)

// Stage names of the transaction lifecycle, in pipeline order.
const (
	StagePropose       = "propose"
	StageEndorse       = "endorse"
	StageOrder         = "order"
	StageGossipSend    = "gossip.send"
	StageGossipDeliver = "gossip.deliver"
	StageCommitPreval  = "commit.preval"
	StageCommitMVCC    = "commit.mvcc"
	StageCommitPersist = "commit.persist"
)

// Span is one timed hop of a transaction's lifecycle.
type Span struct {
	// Stage is one of the Stage* names.
	Stage string `json:"stage"`
	// Peer names the component that recorded the span (a peer name,
	// "gateway", or "orderer").
	Peer string `json:"peer,omitempty"`
	// Start is when the stage began.
	Start time.Time `json:"start"`
	// Duration is how long the stage took.
	Duration time.Duration `json:"durationNs"`
	// Note carries optional stage detail (e.g. a block number).
	Note string `json:"note,omitempty"`
	// Remote marks a span measured in another process and joined into this
	// recorder via the frame-header trace ID.
	Remote bool `json:"remote,omitempty"`
}

// End returns the span's end time.
func (s Span) End() time.Time { return s.Start.Add(s.Duration) }

// Trace is the accumulated timeline of one transaction.
type Trace struct {
	// ID is the transaction ID the trace is rooted at.
	ID string `json:"id"`
	// Spans are the recorded hops. Snapshots returned by Recent/Slow are
	// sorted by start time; the live copy is in arrival order.
	Spans []Span `json:"spans"`
	// Outcome is the final validation code ("VALID", "MVCC_READ_CONFLICT",
	// …), set at Complete.
	Outcome string `json:"outcome,omitempty"`
	// Done reports whether Complete was called.
	Done bool `json:"done"`
	// Total is the first-span-start to last-span-end duration, set at
	// Complete.
	Total time.Duration `json:"totalNs"`
}

// Recorder capacity bounds.
const (
	maxLive      = 1024 // live (incomplete) traces; oldest evicted first
	maxSpans     = 32   // spans kept per trace; later spans are dropped
	recentCap    = 256  // completed traces kept in the recent ring
	slowCap      = 32   // completed traces kept in the top-K slow list
	defaultDepth = 16   // span slice pre-allocation
)

// Recorder collects traces under one mutex. All methods are safe for
// concurrent use and are no-ops on a nil receiver, so an unset tracer costs
// one nil check per call site.
type Recorder struct {
	mu    sync.Mutex
	live  map[string]*Trace
	order []string // live-trace insertion order, for FIFO eviction

	recent   []*Trace // ring of completed traces
	recentAt int
	slow     []*Trace // completed traces, sorted by Total descending
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{live: make(map[string]*Trace, 64)}
}

// Observe records one span ending now: the stage ran from start to
// time.Now(). Unknown IDs start a new trace (the propose span usually does,
// but on a gossip-only peer the first span seen is a delivery).
func (r *Recorder) Observe(id, stage, peer string, start time.Time, note string) {
	if r == nil || id == "" {
		return
	}
	r.Add(id, Span{Stage: stage, Peer: peer, Start: start, Duration: time.Since(start), Note: note})
}

// Add records a fully-formed span (used for spans measured elsewhere, e.g.
// shipped back from a remote endorser).
func (r *Recorder) Add(id string, s Span) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	r.addLocked(id, s)
	r.mu.Unlock()
}

// AddBatch records the same stage timing for many transactions at once —
// one lock acquisition per committed block, not per transaction.
func (r *Recorder) AddBatch(ids []string, stage, peer string, start time.Time, d time.Duration) {
	if r == nil || len(ids) == 0 {
		return
	}
	s := Span{Stage: stage, Peer: peer, Start: start, Duration: d}
	r.mu.Lock()
	for _, id := range ids {
		if id != "" {
			r.addLocked(id, s)
		}
	}
	r.mu.Unlock()
}

func (r *Recorder) addLocked(id string, s Span) {
	t, ok := r.live[id]
	if !ok {
		if len(r.order) >= maxLive {
			// FIFO-evict the oldest live trace: an abandoned tx must not
			// pin memory forever.
			oldest := r.order[0]
			r.order = r.order[1:]
			delete(r.live, oldest)
		}
		t = &Trace{ID: id, Spans: make([]Span, 0, defaultDepth)}
		r.live[id] = t
		r.order = append(r.order, id)
	}
	if len(t.Spans) < maxSpans {
		t.Spans = append(t.Spans, s)
	}
}

// Complete marks a trace finished with the given outcome (the transaction's
// validation code), computes its total duration, and moves it from the live
// set into the recent ring and, when slow enough, the slow list. Completing
// an unknown ID is a no-op.
func (r *Recorder) Complete(id, outcome string) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.live[id]
	if !ok {
		return
	}
	delete(r.live, id)
	for i, o := range r.order {
		if o == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	t.Outcome = outcome
	t.Done = true
	if len(t.Spans) > 0 {
		first := t.Spans[0].Start
		last := t.Spans[0].End()
		for _, s := range t.Spans[1:] {
			if s.Start.Before(first) {
				first = s.Start
			}
			if e := s.End(); e.After(last) {
				last = e
			}
		}
		t.Total = last.Sub(first)
	}
	// Recent ring: overwrite the oldest slot.
	if len(r.recent) < recentCap {
		r.recent = append(r.recent, t)
	} else {
		r.recent[r.recentAt] = t
		r.recentAt = (r.recentAt + 1) % recentCap
	}
	// Slow list: keep the top slowCap by total duration.
	if len(r.slow) < slowCap || t.Total > r.slow[len(r.slow)-1].Total {
		r.slow = append(r.slow, t)
		sort.SliceStable(r.slow, func(i, j int) bool { return r.slow[i].Total > r.slow[j].Total })
		if len(r.slow) > slowCap {
			r.slow = r.slow[:slowCap]
		}
	}
}

// Recent returns up to n most recently completed traces, newest first, each
// with its spans sorted by start time. n <= 0 means all retained.
func (r *Recorder) Recent(n int) []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	// Reconstruct newest-first order from the ring. While filling,
	// recentAt is 0 and the newest entry sits at the end; once full,
	// recentAt is the next overwrite slot, i.e. one past the newest.
	size := len(r.recent)
	out := make([]*Trace, 0, size)
	for i := 1; i <= size; i++ {
		out = append(out, r.recent[(r.recentAt-i+size)%size])
	}
	r.mu.Unlock()
	return snapshot(out, n)
}

// Slow returns up to n slowest completed traces, slowest first, each with
// its spans sorted by start time. n <= 0 means all retained.
func (r *Recorder) Slow(n int) []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*Trace, len(r.slow))
	copy(out, r.slow)
	r.mu.Unlock()
	return snapshot(out, n)
}

// Lookup returns the trace for id — live or completed — and whether it was
// found. The returned copy has its spans sorted by start time.
func (r *Recorder) Lookup(id string) (Trace, bool) {
	if r == nil {
		return Trace{}, false
	}
	r.mu.Lock()
	t, ok := r.live[id]
	if !ok {
		for _, c := range r.recent {
			if c.ID == id {
				t, ok = c, true
				break
			}
		}
	}
	var cp Trace
	if ok {
		// Copy under the lock: a live trace may gain spans concurrently.
		cp = copyTrace(t)
	}
	r.mu.Unlock()
	return cp, ok
}

// LiveCount returns the number of incomplete traces currently retained.
func (r *Recorder) LiveCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// snapshot deep-copies up to n traces with spans sorted by start time.
func snapshot(ts []*Trace, n int) []Trace {
	if n > 0 && len(ts) > n {
		ts = ts[:n]
	}
	out := make([]Trace, len(ts))
	for i, t := range ts {
		out[i] = copyTrace(t)
	}
	return out
}

// copyTrace deep-copies one trace and sorts its spans into timeline order.
// Completed traces are immutable once out of the live map, but the copy
// keeps callers from mutating recorder-owned memory either way.
func copyTrace(t *Trace) Trace {
	cp := *t
	cp.Spans = make([]Span, len(t.Spans))
	copy(cp.Spans, t.Spans)
	sort.SliceStable(cp.Spans, func(i, j int) bool { return cp.Spans[i].Start.Before(cp.Spans[j].Start) })
	return cp
}
