package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Observe("tx", StagePropose, "gw", time.Now(), "")
	r.Add("tx", Span{Stage: StageEndorse})
	r.AddBatch([]string{"tx"}, StageCommitMVCC, "p", time.Now(), time.Millisecond)
	r.Complete("tx", "VALID")
	if got := r.Recent(10); got != nil {
		t.Errorf("Recent on nil = %v", got)
	}
	if got := r.Slow(10); got != nil {
		t.Errorf("Slow on nil = %v", got)
	}
	if _, ok := r.Lookup("tx"); ok {
		t.Error("Lookup on nil found a trace")
	}
	if r.LiveCount() != 0 {
		t.Error("LiveCount on nil != 0")
	}
}

func TestLifecycle(t *testing.T) {
	r := NewRecorder()
	base := time.Now()
	// Spans arrive out of timeline order (commit before the late-recorded
	// propose), as they do when the gateway records propose after fan-out.
	r.Add("tx1", Span{Stage: StageEndorse, Peer: "peer0", Start: base.Add(time.Millisecond), Duration: 2 * time.Millisecond})
	r.Add("tx1", Span{Stage: StagePropose, Peer: "gateway", Start: base, Duration: 5 * time.Millisecond})
	r.AddBatch([]string{"tx1"}, StageCommitPersist, "peer0", base.Add(8*time.Millisecond), 2*time.Millisecond)
	if r.LiveCount() != 1 {
		t.Fatalf("LiveCount = %d, want 1", r.LiveCount())
	}
	if _, ok := r.Lookup("tx1"); !ok {
		t.Fatal("Lookup missed live trace")
	}

	r.Complete("tx1", "VALID")
	if r.LiveCount() != 0 {
		t.Fatalf("LiveCount after Complete = %d", r.LiveCount())
	}
	recent := r.Recent(10)
	if len(recent) != 1 {
		t.Fatalf("Recent = %d traces, want 1", len(recent))
	}
	tr := recent[0]
	if tr.ID != "tx1" || !tr.Done || tr.Outcome != "VALID" {
		t.Errorf("trace = %+v", tr)
	}
	// Spans sorted into timeline order; total covers first start to last end.
	if tr.Spans[0].Stage != StagePropose || tr.Spans[2].Stage != StageCommitPersist {
		t.Errorf("span order = %v", tr.Spans)
	}
	if tr.Total != 10*time.Millisecond {
		t.Errorf("Total = %v, want 10ms", tr.Total)
	}
	if _, ok := r.Lookup("tx1"); !ok {
		t.Error("Lookup missed completed trace")
	}
}

func TestSlowKeepsSlowest(t *testing.T) {
	r := NewRecorder()
	base := time.Now()
	for i := 0; i < slowCap+10; i++ {
		id := fmt.Sprintf("tx%03d", i)
		r.Add(id, Span{Stage: StageCommitMVCC, Start: base, Duration: time.Duration(i) * time.Millisecond})
		r.Complete(id, "VALID")
	}
	slow := r.Slow(0)
	if len(slow) != slowCap {
		t.Fatalf("Slow = %d traces, want %d", len(slow), slowCap)
	}
	if slow[0].ID != fmt.Sprintf("tx%03d", slowCap+9) {
		t.Errorf("slowest = %s", slow[0].ID)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Total > slow[i-1].Total {
			t.Fatalf("slow list not sorted at %d", i)
		}
	}
	// Recent is newest-first.
	recent := r.Recent(3)
	if len(recent) != 3 || recent[0].ID != fmt.Sprintf("tx%03d", slowCap+9) {
		t.Errorf("recent head = %+v", recent)
	}
}

func TestBoundedMemory(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < maxLive+100; i++ {
		r.Observe(fmt.Sprintf("tx%d", i), StagePropose, "gw", time.Now(), "")
	}
	if got := r.LiveCount(); got != maxLive {
		t.Errorf("LiveCount = %d, want cap %d", got, maxLive)
	}
	// Oldest live traces were evicted; completing one is a harmless no-op.
	r.Complete("tx0", "VALID")
	if len(r.Recent(0)) != 0 {
		t.Error("evicted trace reached the recent ring")
	}

	// Span cap per trace.
	for i := 0; i < maxSpans+10; i++ {
		r.Observe("fat", StageEndorse, "p", time.Now(), "")
	}
	tr, ok := r.Lookup("fat")
	if !ok || len(tr.Spans) != maxSpans {
		t.Errorf("fat trace spans = %d, want %d", len(tr.Spans), maxSpans)
	}

	// Recent ring cap.
	for i := 0; i < recentCap+50; i++ {
		id := fmt.Sprintf("done%d", i)
		r.Add(id, Span{Stage: StageOrder, Start: time.Now()})
		r.Complete(id, "VALID")
	}
	if got := len(r.Recent(0)); got != recentCap {
		t.Errorf("recent = %d, want cap %d", got, recentCap)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-tx%d", w, i)
				r.Observe(id, StagePropose, "gw", time.Now(), "")
				r.AddBatch([]string{id}, StageCommitPersist, "p", time.Now(), time.Microsecond)
				r.Complete(id, "VALID")
				r.Recent(5)
				r.Slow(5)
			}
		}(w)
	}
	wg.Wait()
	if len(r.Recent(0)) == 0 {
		t.Error("no traces recorded")
	}
}
