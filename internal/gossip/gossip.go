// Package gossip implements pull-based anti-entropy block dissemination
// between peers: each member periodically asks a random neighbour for
// blocks beyond its own height and commits what it receives. In the paper's
// edge setting (and in Vegvisir, which it cites) this is what lets a peer
// that lost connectivity to the ordering service catch up from its
// neighbours once the partition heals, without relying on constant
// connectivity to the cloud.
package gossip

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/trace"
)

// Member is the peer surface gossip needs: report height, serve blocks,
// and accept blocks.
type Member interface {
	// Name identifies the member.
	Name() string
	// Height returns the member's committed block height.
	Height() uint64
	// BlocksFrom returns committed blocks with number >= from.
	BlocksFrom(from uint64) []*blockstore.Block
	// DeliverBlock hands the member a block fetched from a neighbour; the
	// member validates and commits it exactly like an ordered block.
	// Delivery may be asynchronous; gossip calls Sync (when the member
	// implements Syncer) once per pull to flush a delivered batch.
	DeliverBlock(b *blockstore.Block)
}

// Syncer is optionally implemented by members whose DeliverBlock is
// asynchronous (a pipelined committer). Gossip calls Sync once after
// delivering a whole pulled batch, so a long catch-up feeds the pipeline
// back-to-back instead of draining it per block.
type Syncer interface {
	Sync()
}

// Config tunes the gossip protocol.
type Config struct {
	// Interval is the anti-entropy round period.
	Interval time.Duration
	// Fanout is how many random neighbours are probed per round.
	Fanout int
	// Seed fixes neighbour selection.
	Seed int64
}

// DefaultConfig returns gossip settings suitable for LAN deployments.
func DefaultConfig() Config {
	return Config{Interval: 50 * time.Millisecond, Fanout: 1}
}

// Network runs anti-entropy rounds among a fixed membership with
// injectable link failures.
type Network struct {
	cfg     Config
	members []Member

	mu       sync.RWMutex
	rng      *rand.Rand
	blocked  map[string]map[string]bool // from -> to -> blocked
	isolated map[string]bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// metrics and tracer are attached after construction (the anti-entropy
	// loop is already running by then), hence atomic pointers rather than
	// plain fields.
	metrics atomic.Pointer[metrics.Registry]
	tracer  atomic.Pointer[trace.Recorder]
}

// New creates a gossip network over the given members and starts its
// anti-entropy loop.
func New(cfg Config, members ...Member) *Network {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultConfig().Interval
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 1
	}
	g := &Network{
		cfg:      cfg,
		members:  members,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		blocked:  make(map[string]map[string]bool),
		isolated: make(map[string]bool),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go g.loop()
	return g
}

// SetMetrics attaches a registry receiving gossip protocol counters
// (rounds, pull deliveries, blocks pulled) and the convergence-lag
// histogram. Safe to call while the loop runs.
func (g *Network) SetMetrics(reg *metrics.Registry) { g.metrics.Store(reg) }

// SetTracer attaches a trace recorder: each pulled block's transactions
// gain a gossip.deliver span naming the pulling member. Safe to call while
// the loop runs.
func (g *Network) SetTracer(t *trace.Recorder) { g.tracer.Store(t) }

// MemberCount returns the current gossip membership size (the /healthz
// peer count).
func (g *Network) MemberCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.members)
}

// Stop terminates the anti-entropy loop.
func (g *Network) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
}

// Add joins a new member to the gossip membership; it will catch up from
// its neighbours on the next rounds.
func (g *Network) Add(m Member) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members = append(g.members, m)
}

// Isolate cuts a member off from all gossip traffic (both directions).
func (g *Network) Isolate(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.isolated[name] = true
}

// Heal restores a member's gossip connectivity.
func (g *Network) Heal(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.isolated, name)
}

// Block cuts the directed gossip link from -> to: "from" can no longer
// pull from "to". Use a pair of Block calls for a symmetric partition.
func (g *Network) Block(from, to string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.blocked[from] == nil {
		g.blocked[from] = make(map[string]bool)
	}
	g.blocked[from][to] = true
}

// Unblock restores the directed gossip link from -> to.
func (g *Network) Unblock(from, to string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.blocked[from], to)
	if len(g.blocked[from]) == 0 {
		delete(g.blocked, from)
	}
}

// linkOK reports whether a can currently pull from b.
func (g *Network) linkOK(a, b string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.isolated[a] || g.isolated[b] {
		return false
	}
	return !g.blocked[a][b]
}

func (g *Network) loop() {
	defer close(g.done)
	ticker := time.NewTicker(g.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			g.round()
		}
	}
}

// round runs one anti-entropy exchange: every member pulls missing blocks
// from up to Fanout random neighbours.
func (g *Network) round() {
	if reg := g.metrics.Load(); reg != nil {
		reg.Counter(metrics.GossipRounds).Inc()
	}
	members := g.membersSnapshot()
	for _, m := range members {
		for f := 0; f < g.cfg.Fanout; f++ {
			peer := g.pickNeighbour(m, members)
			if peer == nil {
				continue
			}
			g.pull(m, peer)
		}
	}
}

func (g *Network) membersSnapshot() []Member {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Member, len(g.members))
	copy(out, g.members)
	return out
}

// pickNeighbour draws uniformly from the n-1 members that are not m: the
// RNG picks an index into the candidate set with self removed, so no
// neighbour's pull probability depends on its position relative to m.
func (g *Network) pickNeighbour(m Member, members []Member) Member {
	if len(members) < 2 {
		return nil
	}
	self := -1
	for i, c := range members {
		if c.Name() == m.Name() {
			self = i
			break
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if self < 0 {
		return members[g.rng.Intn(len(members))]
	}
	idx := g.rng.Intn(len(members) - 1)
	if idx >= self {
		idx++
	}
	return members[idx]
}

// pull fetches blocks the puller is missing from the source, in order. The
// whole batch is handed to the puller before a single Sync, so a pipelined
// committer overlaps validation and persistence across the tail instead of
// being drained once per block.
func (g *Network) pull(puller, source Member) {
	if !g.linkOK(puller.Name(), source.Name()) {
		return
	}
	have := puller.Height()
	srcH := source.Height()
	if srcH <= have {
		return
	}
	blocks := source.BlocksFrom(have)
	if len(blocks) == 0 {
		return
	}
	tracer := g.tracer.Load()
	for _, b := range blocks {
		start := time.Now()
		puller.DeliverBlock(b)
		if tracer != nil {
			tracer.AddBatch(envelopeIDs(b), trace.StageGossipDeliver, puller.Name(), start, time.Since(start))
		}
	}
	if s, ok := puller.(Syncer); ok {
		s.Sync()
	}
	if reg := g.metrics.Load(); reg != nil {
		reg.Counter(metrics.GossipPullDeliveries).Inc()
		reg.Counter(metrics.GossipBlocksPulled).Add(int64(len(blocks)))
		// Convergence lag: how many blocks behind the source this puller was
		// when the pull started (1 block == 1ns in the histogram's slots).
		reg.Histogram(metrics.GossipConvergenceLag).Observe(time.Duration(srcH - have))
	}
}

// envelopeIDs collects a block's transaction IDs for span batching.
func envelopeIDs(b *blockstore.Block) []string {
	ids := make([]string, len(b.Envelopes))
	for i := range b.Envelopes {
		ids[i] = b.Envelopes[i].TxID
	}
	return ids
}

// Converged reports whether all non-isolated members are at the same
// height.
func (g *Network) Converged() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var h uint64
	first := true
	for _, m := range g.members {
		if g.isolated[m.Name()] {
			continue
		}
		if first {
			h = m.Height()
			first = false
			continue
		}
		if m.Height() != h {
			return false
		}
	}
	return true
}
