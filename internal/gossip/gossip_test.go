package gossip

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
)

// fakeMember is an in-memory Member for protocol-level tests.
type fakeMember struct {
	name string
	mu   sync.Mutex
	sto  *blockstore.Store
}

func newFakeMember(name string) *fakeMember {
	return &fakeMember{name: name, sto: blockstore.NewStore()}
}

func (m *fakeMember) Name() string { return m.name }

func (m *fakeMember) Height() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sto.Height()
}

func (m *fakeMember) BlocksFrom(from uint64) []*blockstore.Block {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sto.BlocksFrom(from)
}

func (m *fakeMember) DeliverBlock(b *blockstore.Block) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b.Header.Number != m.sto.Height() {
		return
	}
	_ = m.sto.Append(b)
}

// appendBlocks extends a member's chain by n blocks.
func appendBlocks(t *testing.T, m *fakeMember, n int) {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < n; i++ {
		num := m.sto.Height()
		b, err := blockstore.NewBlock(num, m.sto.LastHash(),
			[]blockstore.Envelope{{TxID: fmt.Sprintf("%s-tx-%d", m.name, num)}})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.sto.Append(b); err != nil {
			t.Fatal(err)
		}
	}
}

func waitConverged(t *testing.T, g *Network, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if g.Converged() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("gossip did not converge")
}

func TestAntiEntropyCatchUp(t *testing.T) {
	a, b, c := newFakeMember("a"), newFakeMember("b"), newFakeMember("c")
	appendBlocks(t, a, 5) // a is ahead; b and c are empty
	g := New(Config{Interval: 5 * time.Millisecond, Fanout: 2, Seed: 1}, a, b, c)
	defer g.Stop()
	waitConverged(t, g, 5*time.Second)
	if b.Height() != 5 || c.Height() != 5 {
		t.Errorf("heights after convergence: b=%d c=%d", b.Height(), c.Height())
	}
	if err := b.sto.VerifyChain(); err != nil {
		t.Errorf("b chain: %v", err)
	}
}

func TestIsolationBlocksGossipThenHeals(t *testing.T) {
	a, b := newFakeMember("a"), newFakeMember("b")
	g := New(Config{Interval: 5 * time.Millisecond, Fanout: 1, Seed: 2}, a, b)
	defer g.Stop()

	g.Isolate("b")
	appendBlocks(t, a, 3)
	time.Sleep(60 * time.Millisecond)
	if b.Height() != 0 {
		t.Fatalf("isolated member received blocks: height %d", b.Height())
	}
	g.Heal("b")
	waitConverged(t, g, 5*time.Second)
	if b.Height() != 3 {
		t.Errorf("healed member height = %d, want 3", b.Height())
	}
}

func TestBidirectionalConvergence(t *testing.T) {
	// Two members each ahead on disjoint chains cannot merge (different
	// chains), but a fresh member must catch up from whichever it pulls.
	a, b := newFakeMember("a"), newFakeMember("b")
	appendBlocks(t, a, 4)
	g := New(Config{Interval: 5 * time.Millisecond, Fanout: 1, Seed: 3}, a, b)
	defer g.Stop()
	waitConverged(t, g, 5*time.Second)
	if b.Height() != 4 {
		t.Errorf("b height = %d", b.Height())
	}
	// New blocks keep flowing.
	appendBlocks(t, a, 2)
	waitConverged(t, g, 5*time.Second)
	if b.Height() != 6 {
		t.Errorf("b height after more blocks = %d", b.Height())
	}
}

func TestSingleMemberNoop(t *testing.T) {
	a := newFakeMember("a")
	g := New(Config{Interval: 5 * time.Millisecond}, a)
	defer g.Stop()
	time.Sleep(20 * time.Millisecond)
	if !g.Converged() {
		t.Error("single member not converged")
	}
}

func TestStopIdempotent(t *testing.T) {
	g := New(DefaultConfig(), newFakeMember("a"), newFakeMember("b"))
	g.Stop()
	g.Stop()
}

// TestPickNeighbourUniform pins the selection fix: with self excluded from
// the draw, every other member must be picked with equal probability. The
// old next-member fallback gave the member after self double weight.
func TestPickNeighbourUniform(t *testing.T) {
	a, b, c := newFakeMember("a"), newFakeMember("b"), newFakeMember("c")
	g := New(Config{Interval: time.Hour, Seed: 42}, a, b, c)
	defer g.Stop()
	members := []Member{a, b, c}
	const draws = 6000
	counts := make(map[string]int)
	for i := 0; i < draws; i++ {
		peer := g.pickNeighbour(a, members)
		if peer == nil {
			t.Fatal("nil neighbour with 3 members")
		}
		if peer.Name() == "a" {
			t.Fatal("picked self")
		}
		counts[peer.Name()]++
	}
	// Fair draws put each of b and c near draws/2; the old bias put the
	// member after self near 2*draws/3. 10% tolerance is > 12 sigma.
	lo, hi := draws/2-draws/10, draws/2+draws/10
	for _, name := range []string{"b", "c"} {
		if counts[name] < lo || counts[name] > hi {
			t.Errorf("%s picked %d times of %d, want ~%d", name, counts[name], draws, draws/2)
		}
	}
}

// syncCountingMember wraps a fake member and counts Sync calls, verifying
// the once-per-pulled-batch contract.
type syncCountingMember struct {
	*fakeMember
	mu        sync.Mutex
	syncs     int
	delivered int
}

func (m *syncCountingMember) DeliverBlock(b *blockstore.Block) {
	m.mu.Lock()
	m.delivered++
	m.mu.Unlock()
	m.fakeMember.DeliverBlock(b)
}

func (m *syncCountingMember) Sync() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncs++
}

// TestPullSyncsOncePerBatch: a long catch-up delivers every block and
// flushes the puller exactly once, so a pipelined committer overlaps
// validation and persistence across the whole tail.
func TestPullSyncsOncePerBatch(t *testing.T) {
	source := newFakeMember("src")
	appendBlocks(t, source, 8)
	puller := &syncCountingMember{fakeMember: newFakeMember("dst")}
	g := New(Config{Interval: time.Hour}, puller, source)
	defer g.Stop()

	g.pull(puller, source)
	puller.mu.Lock()
	defer puller.mu.Unlock()
	if puller.delivered != 8 {
		t.Errorf("delivered %d blocks, want 8", puller.delivered)
	}
	if puller.syncs != 1 {
		t.Errorf("pull synced %d times, want exactly 1", puller.syncs)
	}
}

// TestBlockUnblockPartitionHeal: injectable per-link failures actually cut
// the link, and removing them lets the member converge.
func TestBlockUnblockPartitionHeal(t *testing.T) {
	a, b := newFakeMember("a"), newFakeMember("b")
	appendBlocks(t, a, 4)
	g := New(Config{Interval: 5 * time.Millisecond, Fanout: 1, Seed: 7}, a, b)
	defer g.Stop()

	g.Block("b", "a")
	time.Sleep(60 * time.Millisecond)
	if b.Height() != 0 {
		t.Fatalf("blocked link leaked %d blocks", b.Height())
	}
	// The reverse direction must be unaffected: a can still pull from b.
	if !g.linkOK("a", "b") {
		t.Error("Block cut the reverse direction too")
	}
	g.Unblock("b", "a")
	waitConverged(t, g, 5*time.Second)
	if b.Height() != 4 {
		t.Errorf("healed member height = %d, want 4", b.Height())
	}
}
