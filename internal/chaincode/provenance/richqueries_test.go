package provenance

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// newIndexedLedger runs the harness on the CouchDB-flavour store with the
// contract's declared indexes installed, as the peer does in production.
func newIndexedLedger(t *testing.T) *ledger {
	t.Helper()
	state, err := statedb.NewIndexed()
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range New().Indexes() {
		if err := state.DefineIndex(def); err != nil {
			t.Fatal(err)
		}
	}
	return newLedgerOn(t, state)
}

// bothLedgers returns the scan-path and index-path harnesses; tests run
// every query against both and require identical answers (the subsystem's
// core acceptance property).
func bothLedgers(t *testing.T) map[string]*ledger {
	t.Helper()
	return map[string]*ledger{"scan": newLedger(t), "indexed": newIndexedLedger(t)}
}

func recordKeys(t *testing.T, resp shim.Response) []string {
	t.Helper()
	if resp.Status != shim.OK {
		t.Fatalf("query failed: %s", resp.Message)
	}
	var recs []Record
	if err := json.Unmarshal(resp.Payload, &recs); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	return keys
}

// populate stores the same mixed fixture on a ledger: two "types", parent
// edges, one deletion, one overwrite.
func populate(t *testing.T, l *ledger) {
	t.Helper()
	for i := 0; i < 8; i++ {
		typ := "raw"
		if i%3 == 0 {
			typ = "aggregate"
		}
		in, err := json.Marshal(setArgs{
			Key:      fmt.Sprintf("item-%d", i),
			Checksum: fmt.Sprintf("cs-%d", i),
			Meta:     map[string]string{"type": typ, "step": fmt.Sprint(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp := l.invoke(FnSet, string(in)); resp.Status != shim.OK {
			t.Fatalf("set: %s", resp.Message)
		}
	}
	// Overwrite one record and delete another: indexes must follow.
	in, _ := json.Marshal(setArgs{Key: "item-1", Checksum: "cs-1b",
		Meta: map[string]string{"type": "aggregate"}})
	if resp := l.invoke(FnSet, string(in)); resp.Status != shim.OK {
		t.Fatalf("overwrite: %s", resp.Message)
	}
	if resp := l.invoke(FnDelete, "item-5"); resp.Status != shim.OK {
		t.Fatalf("delete: %s", resp.Message)
	}
}

func TestRichQueriesIndexedMatchesScan(t *testing.T) {
	ledgers := bothLedgers(t)
	for _, l := range ledgers {
		populate(t, l)
	}
	owner := "x509::CN=tester,O=Org1,OU=client"

	queries := []struct {
		name string
		run  func(l *ledger) shim.Response
	}{
		{"getByOwner", func(l *ledger) shim.Response { return l.query(FnGetByOwner, owner) }},
		{"getByOwner-miss", func(l *ledger) shim.Response { return l.query(FnGetByOwner, "nobody") }},
		{"getByType-raw", func(l *ledger) shim.Response { return l.query(FnGetByType, "raw") }},
		{"getByType-agg", func(l *ledger) shim.Response { return l.query(FnGetByType, "aggregate") }},
		{"getByCreator", func(l *ledger) shim.Response { return l.query(FnGetByCreator, owner) }},
		{"queryMeta", func(l *ledger) shim.Response { return l.query(FnQueryMeta, "type", "raw") }},
		// Empty value has always meant "records lacking the key" (missing
		// map reads yield ""): both paths must preserve that.
		{"queryMeta-empty", func(l *ledger) shim.Response { return l.query(FnQueryMeta, "absent-key", "") }},
		{"timeRange", func(l *ledger) shim.Response {
			return l.query(FnGetByTimeRange, "2019-10-02T00:00:00Z", "2039-01-01T00:00:00Z")
		}},
	}
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			scan := recordKeys(t, q.run(ledgers["scan"]))
			indexed := recordKeys(t, q.run(ledgers["indexed"]))
			if fmt.Sprint(scan) != fmt.Sprint(indexed) {
				t.Errorf("scan path %v != indexed path %v", scan, indexed)
			}
		})
	}

	// Sanity on content, not just equality: the deleted record is gone and
	// the overwritten record changed type.
	byType := recordKeys(t, ledgers["indexed"].query(FnGetByType, "raw"))
	for _, k := range byType {
		if k == "item-5" || k == "item-1" {
			t.Errorf("stale index entry %q in %v", k, byType)
		}
	}
	mine := recordKeys(t, ledgers["indexed"].query(FnGetByOwner, owner))
	if len(mine) != 7 { // 8 stored - 1 deleted
		t.Errorf("owner has %d records, want 7: %v", len(mine), mine)
	}
}

func TestRichQueryFunction(t *testing.T) {
	for name, l := range bothLedgers(t) {
		t.Run(name, func(t *testing.T) {
			populate(t, l)
			resp := l.query(FnRichQuery,
				`{"selector":{"meta.type":"aggregate"},"sort":[{"ts":"desc"}]}`)
			if resp.Status != shim.OK {
				t.Fatalf("richQuery: %s", resp.Message)
			}
			var page QueryPage
			if err := json.Unmarshal(resp.Payload, &page); err != nil {
				t.Fatal(err)
			}
			if len(page.Records) != 4 { // items 0,3,6 plus overwritten item-1
				t.Errorf("aggregate records = %d: %+v", len(page.Records), page.Records)
			}
			for i := 1; i < len(page.Records); i++ {
				if page.Records[i-1].TSMillis < page.Records[i].TSMillis {
					t.Errorf("descending ts sort violated at %d", i)
				}
			}

			// Explicit pagination walks the full result without duplicates.
			var all []string
			bookmark := ""
			for pageN := 0; ; pageN++ {
				resp := l.query(FnRichQuery, `{"selector":{"owner":{"$regex":"tester"}}}`, "3", bookmark)
				if resp.Status != shim.OK {
					t.Fatalf("paged richQuery: %s", resp.Message)
				}
				var p QueryPage
				if err := json.Unmarshal(resp.Payload, &p); err != nil {
					t.Fatal(err)
				}
				for _, r := range p.Records {
					all = append(all, r.Key)
				}
				if p.Next == "" {
					break
				}
				bookmark = p.Next
				if pageN > 5 {
					t.Fatal("pagination did not terminate")
				}
			}
			if len(all) != 7 {
				t.Errorf("paged %d records, want 7", len(all))
			}

			// Bad inputs.
			if resp := l.query(FnRichQuery, `{"selector":{"a":{"$no":1}}}`); resp.Status == shim.OK {
				t.Error("bad selector accepted")
			}
			if resp := l.query(FnRichQuery, `{}`, "zero", ""); resp.Status == shim.OK {
				t.Error("bad page size accepted")
			}
			if resp := l.query(FnGetByTimeRange, "not-a-time", "2039-01-01T00:00:00Z"); resp.Status == shim.OK {
				t.Error("bad time accepted")
			}
		})
	}
}

// TestIndexDeclarations pins the contract's index set: these names are part
// of the deployment contract (the peer namespaces them per chaincode).
func TestIndexDeclarations(t *testing.T) {
	defs := New().Indexes()
	want := map[string]string{
		"by-owner":           "owner",
		"by-display-creator": "creator",
		"by-type":            "meta.type",
		"by-time":            "ts",
	}
	if len(defs) != len(want) {
		t.Fatalf("declared %d indexes, want %d", len(defs), len(want))
	}
	for _, def := range defs {
		if err := def.Validate(); err != nil {
			t.Errorf("index %q invalid: %v", def.Name, err)
		}
		if want[def.Name] != def.Field {
			t.Errorf("index %q covers %q, want %q", def.Name, def.Field, want[def.Name])
		}
	}
	var _ richquery.IndexDef = defs[0]
}
