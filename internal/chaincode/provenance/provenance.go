// Package provenance implements the HyperProv chaincode: the smart contract
// that stores provenance metadata (checksum, off-chain data location,
// creator certificate, parent lineage, custom metadata) in the ledger and
// answers the paper's built-in provenance queries — record retrieval,
// per-key history, checksum lookup, and lineage traversal in both
// directions.
package provenance

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/hyperprov/hyperprov/internal/shim"
)

// ChaincodeName is the name the contract is deployed under.
const ChaincodeName = "hyperprov"

// Function names accepted by Invoke.
const (
	FnSet            = "set"            // Post: write a provenance record
	FnGet            = "get"            // Get: read the latest record for a key
	FnGetHistory     = "getHistory"     // GetKeyHistory: all versions of a key
	FnGetByChecksum  = "getByChecksum"  // reverse lookup checksum -> key
	FnGetLineage     = "getLineage"     // ancestors (transitive parents)
	FnGetDescendants = "getDescendants" // reverse lineage (items derived from key)
	FnDelete         = "delete"         // tombstone a record
	FnGetStats       = "getStats"       // record/edge counters
)

// State key prefixes. Records live under plain keys so range queries work;
// indexes use composite keys. There is deliberately no global counter key:
// a read-modify-write hot key would make every pair of concurrent Posts
// MVCC-conflict (stats are computed by range scan instead).
const (
	idxChecksum = "cs"   // checksum -> key
	idxChild    = "edge" // (parent, child) edges for descendant queries
)

// maxLineageDepth bounds lineage traversal; provenance DAGs in the paper's
// workloads are shallow, and the bound keeps malicious cycles from looping.
const maxLineageDepth = 64

// Record is the on-chain provenance record (§3 of the paper: checksum,
// data location, creator certificate, parent items, custom metadata).
type Record struct {
	Key      string `json:"key"`
	Checksum string `json:"checksum"`
	Location string `json:"location,omitempty"`
	// Creator is the display identity recorded for provenance queries.
	Creator string `json:"creator"`
	// Owner is the verified wire identity that may update or delete the
	// record (see acl.go); it equals Creator unless the client supplied a
	// custom display creator.
	Owner     string            `json:"owner,omitempty"`
	Parents   []string          `json:"parents,omitempty"`
	Meta      map[string]string `json:"meta,omitempty"`
	TxID      string            `json:"txid"`
	Timestamp time.Time         `json:"timestamp"`
	// TSMillis is Timestamp as integer Unix milliseconds. RFC 3339 strings
	// do not collate correctly across fractional-second precision, so time
	//-window rich queries (and the by-time index) use this field instead.
	TSMillis int64 `json:"ts"`
}

// HistoryRecord is one historical version of a record.
type HistoryRecord struct {
	Record   *Record   `json:"record,omitempty"`
	TxID     string    `json:"txId"`
	IsDelete bool      `json:"isDelete,omitempty"`
	BlockNum uint64    `json:"blockNum"`
	Time     time.Time `json:"timestamp"`
}

// Stats summarizes the contract's stored volume.
type Stats struct {
	Records uint64 `json:"records"`
}

// Chaincode is the HyperProv contract.
type Chaincode struct{}

var _ shim.Chaincode = (*Chaincode)(nil)

// New returns the HyperProv chaincode.
func New() *Chaincode { return &Chaincode{} }

// Init instantiates the contract. HyperProv needs no seed state; the
// instantiation transaction itself lands on the ledger as the deployment
// record.
func (cc *Chaincode) Init(stub *shim.Stub) shim.Response {
	if err := stub.SetEvent("provenance.init", []byte(stub.ChannelID())); err != nil {
		return shim.Errorf("init: %v", err)
	}
	return shim.Success(nil)
}

// Invoke dispatches on the function name.
func (cc *Chaincode) Invoke(stub *shim.Stub) shim.Response {
	switch stub.Function() {
	case FnSet:
		return cc.set(stub)
	case FnGet:
		return cc.get(stub)
	case FnGetHistory:
		return cc.getHistory(stub)
	case FnGetByChecksum:
		return cc.getByChecksum(stub)
	case FnGetLineage:
		return cc.getLineage(stub)
	case FnGetDescendants:
		return cc.getDescendants(stub)
	case FnDelete:
		return cc.delete(stub)
	case FnGetStats:
		return cc.getStats(stub)
	case FnList:
		return cc.list(stub)
	case FnGetByCreator:
		return cc.getByCreator(stub)
	case FnQueryMeta:
		return cc.queryMeta(stub)
	case FnGetChildren:
		return cc.getChildren(stub)
	case FnVersion:
		return cc.version(stub)
	case FnRichQuery:
		return cc.richQuery(stub)
	case FnGetByOwner:
		return cc.getByOwner(stub)
	case FnGetByType:
		return cc.getByType(stub)
	case FnGetByTimeRange:
		return cc.getByTimeRange(stub)
	default:
		return shim.Errorf("unknown function %q", stub.Function())
	}
}

// setArgs is the JSON argument to FnSet.
type setArgs struct {
	Key      string            `json:"key"`
	Checksum string            `json:"checksum"`
	Location string            `json:"location,omitempty"`
	Parents  []string          `json:"parents,omitempty"`
	Meta     map[string]string `json:"meta,omitempty"`
	Creator  string            `json:"creator,omitempty"` // display form; wire identity comes from stub
}

// set writes a provenance record: args[0] is a JSON-encoded setArgs.
func (cc *Chaincode) set(stub *shim.Stub) shim.Response {
	args := stub.Args()
	if len(args) != 1 {
		return shim.Errorf("set: want 1 JSON arg, got %d", len(args))
	}
	var in setArgs
	if err := json.Unmarshal(args[0], &in); err != nil {
		return shim.Errorf("set: bad args: %v", err)
	}
	if in.Key == "" {
		return shim.Errorf("set: empty key")
	}
	if in.Checksum == "" {
		return shim.Errorf("set: empty checksum")
	}
	// Every parent must already have a provenance record: lineage cannot
	// reference unknown items.
	for _, p := range in.Parents {
		if p == in.Key {
			return shim.Errorf("set: record %q lists itself as parent", in.Key)
		}
		pv, err := stub.GetState(p)
		if err != nil {
			return shim.Errorf("set: read parent %q: %v", p, err)
		}
		if pv == nil {
			return shim.Errorf("set: parent %q has no provenance record", p)
		}
	}

	// Read the current version first: this puts the key in the read set,
	// so concurrent updates of the same item serialize (one wins per
	// block), while writes to distinct items never conflict. It also
	// drives the ownership check below.
	existing, err := stub.GetState(in.Key)
	if err != nil {
		return shim.Errorf("set: read %q: %v", in.Key, err)
	}
	client := resolveClient(stub)
	if err := authorizeMutation(existing, client); err != nil {
		return shim.Errorf("set: %v", err)
	}

	rec := Record{
		Key:       in.Key,
		Checksum:  in.Checksum,
		Location:  in.Location,
		Creator:   in.Creator,
		Owner:     client.Subject,
		Parents:   in.Parents,
		Meta:      in.Meta,
		TxID:      stub.TxID(),
		Timestamp: stub.TxTimestamp(),
		TSMillis:  stub.TxTimestamp().UnixMilli(),
	}
	if rec.Creator == "" {
		rec.Creator = client.Subject
	}
	raw, err := json.Marshal(&rec)
	if err != nil {
		return shim.Errorf("set: marshal record: %v", err)
	}
	if err := stub.PutState(in.Key, raw); err != nil {
		return shim.Errorf("set: write %q: %v", in.Key, err)
	}

	// checksum -> key index for getByChecksum.
	csKey, err := stub.CreateCompositeKey(idxChecksum, []string{in.Checksum})
	if err != nil {
		return shim.Errorf("set: checksum index: %v", err)
	}
	if err := stub.PutState(csKey, []byte(in.Key)); err != nil {
		return shim.Errorf("set: checksum index write: %v", err)
	}
	// Creator and owner lookups are served by the state database's
	// secondary indexes (see Indexes), so no per-record creator index
	// entries are written.
	// parent -> child edges for getDescendants.
	for _, p := range in.Parents {
		edge, err := stub.CreateCompositeKey(idxChild, []string{p, in.Key})
		if err != nil {
			return shim.Errorf("set: edge index: %v", err)
		}
		if err := stub.PutState(edge, []byte{1}); err != nil {
			return shim.Errorf("set: edge write: %v", err)
		}
	}

	if err := stub.SetEvent("provenance.set", []byte(in.Key)); err != nil {
		return shim.Errorf("set: event: %v", err)
	}
	return shim.Success(raw)
}

// get returns the latest record for args[0] (a key).
func (cc *Chaincode) get(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("get: want 1 arg, got %d", len(args))
	}
	raw, err := stub.GetState(args[0])
	if err != nil {
		return shim.Errorf("get: %v", err)
	}
	if raw == nil {
		return shim.Errorf("get: key %q not found", args[0])
	}
	return shim.Success(raw)
}

// getHistory returns every committed version of args[0] as a JSON array of
// HistoryRecord, oldest first.
func (cc *Chaincode) getHistory(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("getHistory: want 1 arg, got %d", len(args))
	}
	entries, err := stub.GetHistoryForKey(args[0])
	if err != nil {
		return shim.Errorf("getHistory: %v", err)
	}
	out := make([]HistoryRecord, 0, len(entries))
	for _, e := range entries {
		hr := HistoryRecord{TxID: e.TxID, IsDelete: e.IsDelete, BlockNum: e.BlockNum, Time: e.Timestamp}
		if !e.IsDelete && len(e.Value) > 0 {
			var rec Record
			if err := json.Unmarshal(e.Value, &rec); err == nil {
				hr.Record = &rec
			}
		}
		out = append(out, hr)
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return shim.Errorf("getHistory: marshal: %v", err)
	}
	return shim.Success(payload)
}

// getByChecksum resolves a checksum (args[0]) to its record.
func (cc *Chaincode) getByChecksum(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("getByChecksum: want 1 arg, got %d", len(args))
	}
	csKey, err := stub.CreateCompositeKey(idxChecksum, []string{args[0]})
	if err != nil {
		return shim.Errorf("getByChecksum: %v", err)
	}
	keyRaw, err := stub.GetState(csKey)
	if err != nil {
		return shim.Errorf("getByChecksum: %v", err)
	}
	if keyRaw == nil {
		return shim.Errorf("getByChecksum: checksum %q not found", args[0])
	}
	raw, err := stub.GetState(string(keyRaw))
	if err != nil {
		return shim.Errorf("getByChecksum: read record: %v", err)
	}
	if raw == nil {
		return shim.Errorf("getByChecksum: dangling index for %q", args[0])
	}
	return shim.Success(raw)
}

// getLineage returns the ancestor records of args[0] (breadth-first over
// parents, the key itself first) as a JSON array of Record.
func (cc *Chaincode) getLineage(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("getLineage: want 1 arg, got %d", len(args))
	}
	records, err := cc.walkAncestors(stub, args[0])
	if err != nil {
		return shim.Errorf("getLineage: %v", err)
	}
	payload, err := json.Marshal(records)
	if err != nil {
		return shim.Errorf("getLineage: marshal: %v", err)
	}
	return shim.Success(payload)
}

func (cc *Chaincode) walkAncestors(stub *shim.Stub, start string) ([]Record, error) {
	seen := map[string]bool{start: true}
	frontier := []string{start}
	var out []Record
	for depth := 0; len(frontier) > 0 && depth < maxLineageDepth; depth++ {
		var next []string
		for _, key := range frontier {
			raw, err := stub.GetState(key)
			if err != nil {
				return nil, err
			}
			if raw == nil {
				if key == start {
					return nil, fmt.Errorf("key %q not found", start)
				}
				continue // parent tombstoned; lineage continues past it
			}
			var rec Record
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("corrupt record %q: %w", key, err)
			}
			out = append(out, rec)
			for _, p := range rec.Parents {
				if !seen[p] {
					seen[p] = true
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	return out, nil
}

// getDescendants returns the records derived (transitively) from args[0],
// excluding the key itself, as a JSON array of Record.
func (cc *Chaincode) getDescendants(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("getDescendants: want 1 arg, got %d", len(args))
	}
	start := args[0]
	seen := map[string]bool{start: true}
	frontier := []string{start}
	var out []Record
	for depth := 0; len(frontier) > 0 && depth < maxLineageDepth; depth++ {
		var next []string
		for _, key := range frontier {
			kvs, err := stub.GetStateByPartialCompositeKey(idxChild, []string{key})
			if err != nil {
				return shim.Errorf("getDescendants: %v", err)
			}
			for _, kv := range kvs {
				_, attrs, err := stub.SplitCompositeKey(kv.Key)
				if err != nil || len(attrs) != 2 {
					return shim.Errorf("getDescendants: corrupt edge %q", kv.Key)
				}
				child := attrs[1]
				if seen[child] {
					continue
				}
				seen[child] = true
				raw, err := stub.GetState(child)
				if err != nil {
					return shim.Errorf("getDescendants: read %q: %v", child, err)
				}
				if raw == nil {
					continue
				}
				var rec Record
				if err := json.Unmarshal(raw, &rec); err != nil {
					return shim.Errorf("getDescendants: corrupt record %q: %v", child, err)
				}
				out = append(out, rec)
				next = append(next, child)
			}
		}
		frontier = next
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return shim.Errorf("getDescendants: marshal: %v", err)
	}
	return shim.Success(payload)
}

// delete tombstones the record for args[0]. History is preserved; the
// checksum index entry is removed.
func (cc *Chaincode) delete(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("delete: want 1 arg, got %d", len(args))
	}
	raw, err := stub.GetState(args[0])
	if err != nil {
		return shim.Errorf("delete: %v", err)
	}
	if raw == nil {
		return shim.Errorf("delete: key %q not found", args[0])
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return shim.Errorf("delete: corrupt record: %v", err)
	}
	if err := authorizeMutation(raw, resolveClient(stub)); err != nil {
		return shim.Errorf("delete: %v", err)
	}
	if err := stub.DelState(args[0]); err != nil {
		return shim.Errorf("delete: %v", err)
	}
	if rec.Checksum != "" {
		csKey, err := stub.CreateCompositeKey(idxChecksum, []string{rec.Checksum})
		if err == nil {
			_ = stub.DelState(csKey)
		}
	}
	return shim.Success(nil)
}

// getStats counts live records with a full range scan. It is a read-only
// query (run via Evaluate, never submitted), so the phantom-protecting
// range read it records is never validated against later blocks.
func (cc *Chaincode) getStats(stub *shim.Stub) shim.Response {
	kvs, err := stub.GetStateByRange("", "")
	if err != nil {
		return shim.Errorf("getStats: %v", err)
	}
	payload, err := json.Marshal(Stats{Records: uint64(len(kvs))})
	if err != nil {
		return shim.Errorf("getStats: marshal: %v", err)
	}
	return shim.Success(payload)
}
