package provenance

import (
	"encoding/json"
	"strings"

	"github.com/hyperprov/hyperprov/internal/shim"
)

// This file implements the extended query surface beyond the paper's core
// operator set: prefix listing with pagination, creator-index lookups, and
// metadata filtering. These back the domain-specific provenance systems the
// paper expects to plug in through the client library.

// Extended function names accepted by Invoke.
const (
	FnList         = "list"         // list records by key prefix, paginated
	FnGetByCreator = "getByCreator" // all records posted by a creator
	FnQueryMeta    = "queryMeta"    // records whose meta[k] == v
	FnGetChildren  = "getChildren"  // direct children only (one edge level)
	FnVersion      = "version"      // chaincode version string
)

// Version is the deployed contract version, bumped by upgrades.
const Version = "1.2.0"

// listArgs is the JSON argument to FnList.
type listArgs struct {
	// Prefix restricts the listing to keys with this prefix ("" = all).
	Prefix string `json:"prefix,omitempty"`
	// After resumes listing after this key (exclusive bookmark).
	After string `json:"after,omitempty"`
	// Limit caps the page size (default and max 100).
	Limit int `json:"limit,omitempty"`
}

// ListPage is the result of FnList.
type ListPage struct {
	Records []Record `json:"records"`
	// Next is the bookmark to pass as After for the next page; empty when
	// the listing is exhausted.
	Next string `json:"next,omitempty"`
}

const maxListLimit = 100

// list returns a paginated key-ordered listing of records under a prefix.
// Pagination keeps the read cost of large provenance stores bounded, which
// matters on RPi-class peers.
func (cc *Chaincode) list(stub *shim.Stub) shim.Response {
	args := stub.Args()
	if len(args) != 1 {
		return shim.Errorf("list: want 1 JSON arg, got %d", len(args))
	}
	var in listArgs
	if err := json.Unmarshal(args[0], &in); err != nil {
		return shim.Errorf("list: bad args: %v", err)
	}
	if in.Limit <= 0 || in.Limit > maxListLimit {
		in.Limit = maxListLimit
	}
	start := in.Prefix
	if in.After != "" {
		// Resume strictly after the bookmark.
		start = in.After + "\x01"
	}
	end := ""
	if in.Prefix != "" {
		end = in.Prefix + "\xff"
	}
	kvs, err := stub.GetStateByRange(start, end)
	if err != nil {
		return shim.Errorf("list: %v", err)
	}
	page := ListPage{}
	for _, kv := range kvs {
		if !strings.HasPrefix(kv.Key, in.Prefix) {
			continue
		}
		var rec Record
		if err := json.Unmarshal(kv.Value, &rec); err != nil {
			continue // non-record plain key (none today, defensive)
		}
		page.Records = append(page.Records, rec)
		if len(page.Records) == in.Limit {
			page.Next = kv.Key
			break
		}
	}
	payload, err := json.Marshal(page)
	if err != nil {
		return shim.Errorf("list: marshal: %v", err)
	}
	return shim.Success(payload)
}

// getByCreator returns every record whose creator matches args[0] (the
// display creator subject recorded on the records). Served by the rich-
// query engine through the by-display-creator index; before the rich-query
// subsystem this needed a hand-maintained composite-key index per record.
func (cc *Chaincode) getByCreator(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("getByCreator: want 1 arg, got %d", len(args))
	}
	return cc.fieldQuery(stub, "creator", args[0])
}

// queryMeta returns records whose metadata field args[0] equals args[1].
// Served by the rich-query engine (indexed for meta.type, filtered scan for
// other metadata fields); before the rich-query subsystem this was always a
// full chaincode-level scan. Two cases keep the scan path: metadata keys
// containing "." or "$" cannot be addressed as selector paths, and an empty
// value has always matched records *lacking* the key (a map read of a
// missing key yields ""), which a selector condition cannot express.
func (cc *Chaincode) queryMeta(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 2 {
		return shim.Errorf("queryMeta: want 2 args (key, value), got %d", len(args))
	}
	if strings.ContainsAny(args[0], ".$") || args[1] == "" {
		return cc.queryMetaScan(stub, args[0], args[1])
	}
	return cc.fieldQuery(stub, "meta."+args[0], args[1])
}

// queryMetaScan is the pre-rich-query scan path, kept for metadata keys the
// selector language cannot address.
func (cc *Chaincode) queryMetaScan(stub *shim.Stub, key, value string) shim.Response {
	kvs, err := stub.GetStateByRange("", "")
	if err != nil {
		return shim.Errorf("queryMeta: %v", err)
	}
	out := make([]Record, 0, 8)
	for _, kv := range kvs {
		var rec Record
		if err := json.Unmarshal(kv.Value, &rec); err != nil {
			continue
		}
		if rec.Meta[key] == value {
			out = append(out, rec)
		}
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return shim.Errorf("queryMeta: marshal: %v", err)
	}
	return shim.Success(payload)
}

// getChildren returns only the direct children of args[0] (one edge level),
// cheaper than the transitive getDescendants.
func (cc *Chaincode) getChildren(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("getChildren: want 1 arg, got %d", len(args))
	}
	kvs, err := stub.GetStateByPartialCompositeKey(idxChild, []string{args[0]})
	if err != nil {
		return shim.Errorf("getChildren: %v", err)
	}
	out := make([]Record, 0, len(kvs))
	for _, kv := range kvs {
		_, attrs, err := stub.SplitCompositeKey(kv.Key)
		if err != nil || len(attrs) != 2 {
			return shim.Errorf("getChildren: corrupt edge %q", kv.Key)
		}
		raw, err := stub.GetState(attrs[1])
		if err != nil {
			return shim.Errorf("getChildren: read %q: %v", attrs[1], err)
		}
		if raw == nil {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return shim.Errorf("getChildren: corrupt record %q: %v", attrs[1], err)
		}
		out = append(out, rec)
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return shim.Errorf("getChildren: marshal: %v", err)
	}
	return shim.Success(payload)
}

// version reports the deployed contract version.
func (cc *Chaincode) version(stub *shim.Stub) shim.Response {
	return shim.Success([]byte(Version))
}
