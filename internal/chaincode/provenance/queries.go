package provenance

import (
	"encoding/json"
	"strconv"
	"strings"

	"github.com/hyperprov/hyperprov/internal/shim"
)

// This file implements the extended query surface beyond the paper's core
// operator set: prefix listing with pagination, creator-index lookups, and
// metadata filtering. These back the domain-specific provenance systems the
// paper expects to plug in through the client library.

// Extended function names accepted by Invoke.
const (
	FnList         = "list"         // list records by key prefix, paginated
	FnGetByCreator = "getByCreator" // all records posted by a creator
	FnQueryMeta    = "queryMeta"    // records whose meta[k] == v
	FnGetChildren  = "getChildren"  // direct children only (one edge level)
	FnVersion      = "version"      // chaincode version string
)

// Version is the deployed contract version, bumped by upgrades.
const Version = "1.1.0"

// idxCreator indexes (creatorID, key) pairs for getByCreator.
const idxCreator = "by-creator"

// listArgs is the JSON argument to FnList.
type listArgs struct {
	// Prefix restricts the listing to keys with this prefix ("" = all).
	Prefix string `json:"prefix,omitempty"`
	// After resumes listing after this key (exclusive bookmark).
	After string `json:"after,omitempty"`
	// Limit caps the page size (default and max 100).
	Limit int `json:"limit,omitempty"`
}

// ListPage is the result of FnList.
type ListPage struct {
	Records []Record `json:"records"`
	// Next is the bookmark to pass as After for the next page; empty when
	// the listing is exhausted.
	Next string `json:"next,omitempty"`
}

const maxListLimit = 100

// list returns a paginated key-ordered listing of records under a prefix.
// Pagination keeps the read cost of large provenance stores bounded, which
// matters on RPi-class peers.
func (cc *Chaincode) list(stub *shim.Stub) shim.Response {
	args := stub.Args()
	if len(args) != 1 {
		return shim.Errorf("list: want 1 JSON arg, got %d", len(args))
	}
	var in listArgs
	if err := json.Unmarshal(args[0], &in); err != nil {
		return shim.Errorf("list: bad args: %v", err)
	}
	if in.Limit <= 0 || in.Limit > maxListLimit {
		in.Limit = maxListLimit
	}
	start := in.Prefix
	if in.After != "" {
		// Resume strictly after the bookmark.
		start = in.After + "\x01"
	}
	end := ""
	if in.Prefix != "" {
		end = in.Prefix + "\xff"
	}
	kvs, err := stub.GetStateByRange(start, end)
	if err != nil {
		return shim.Errorf("list: %v", err)
	}
	page := ListPage{}
	for _, kv := range kvs {
		if !strings.HasPrefix(kv.Key, in.Prefix) {
			continue
		}
		var rec Record
		if err := json.Unmarshal(kv.Value, &rec); err != nil {
			continue // non-record plain key (none today, defensive)
		}
		page.Records = append(page.Records, rec)
		if len(page.Records) == in.Limit {
			page.Next = kv.Key
			break
		}
	}
	payload, err := json.Marshal(page)
	if err != nil {
		return shim.Errorf("list: marshal: %v", err)
	}
	return shim.Success(payload)
}

// getByCreator returns every record whose creator matches args[0] (the
// creator subject string recorded on the records).
func (cc *Chaincode) getByCreator(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("getByCreator: want 1 arg, got %d", len(args))
	}
	kvs, err := stub.GetStateByPartialCompositeKey(idxCreator, []string{creatorIndexKey(args[0])})
	if err != nil {
		return shim.Errorf("getByCreator: %v", err)
	}
	out := make([]Record, 0, len(kvs))
	for _, kv := range kvs {
		_, attrs, err := stub.SplitCompositeKey(kv.Key)
		if err != nil || len(attrs) != 2 {
			return shim.Errorf("getByCreator: corrupt index %q", kv.Key)
		}
		raw, err := stub.GetState(attrs[1])
		if err != nil {
			return shim.Errorf("getByCreator: read %q: %v", attrs[1], err)
		}
		if raw == nil {
			continue // tombstoned
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return shim.Errorf("getByCreator: corrupt record %q: %v", attrs[1], err)
		}
		if rec.Creator == args[0] {
			out = append(out, rec)
		}
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return shim.Errorf("getByCreator: marshal: %v", err)
	}
	return shim.Success(payload)
}

// creatorIndexKey derives a fixed-length index attribute from a creator
// subject (subjects contain arbitrary characters).
func creatorIndexKey(creator string) string {
	return strconv.FormatUint(fnv64(creator), 16)
}

// fnv64 is a small inline FNV-1a so the index key is deterministic without
// importing hash/fnv into the hot path.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// queryMeta returns records whose metadata field args[0] equals args[1].
// It is a scan query intended for Evaluate only.
func (cc *Chaincode) queryMeta(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 2 {
		return shim.Errorf("queryMeta: want 2 args (key, value), got %d", len(args))
	}
	kvs, err := stub.GetStateByRange("", "")
	if err != nil {
		return shim.Errorf("queryMeta: %v", err)
	}
	out := make([]Record, 0, 8)
	for _, kv := range kvs {
		var rec Record
		if err := json.Unmarshal(kv.Value, &rec); err != nil {
			continue
		}
		if rec.Meta[args[0]] == args[1] {
			out = append(out, rec)
		}
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return shim.Errorf("queryMeta: marshal: %v", err)
	}
	return shim.Success(payload)
}

// getChildren returns only the direct children of args[0] (one edge level),
// cheaper than the transitive getDescendants.
func (cc *Chaincode) getChildren(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("getChildren: want 1 arg, got %d", len(args))
	}
	kvs, err := stub.GetStateByPartialCompositeKey(idxChild, []string{args[0]})
	if err != nil {
		return shim.Errorf("getChildren: %v", err)
	}
	out := make([]Record, 0, len(kvs))
	for _, kv := range kvs {
		_, attrs, err := stub.SplitCompositeKey(kv.Key)
		if err != nil || len(attrs) != 2 {
			return shim.Errorf("getChildren: corrupt edge %q", kv.Key)
		}
		raw, err := stub.GetState(attrs[1])
		if err != nil {
			return shim.Errorf("getChildren: read %q: %v", attrs[1], err)
		}
		if raw == nil {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return shim.Errorf("getChildren: corrupt record %q: %v", attrs[1], err)
		}
		out = append(out, rec)
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return shim.Errorf("getChildren: marshal: %v", err)
	}
	return shim.Success(payload)
}

// version reports the deployed contract version.
func (cc *Chaincode) version(stub *shim.Stub) shim.Response {
	return shim.Success([]byte(Version))
}
