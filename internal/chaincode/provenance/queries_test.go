package provenance

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/hyperprov/hyperprov/internal/shim"
)

func (l *ledger) listPage(t *testing.T, prefix, after string, limit int) ListPage {
	t.Helper()
	in, err := json.Marshal(listArgs{Prefix: prefix, After: after, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	resp := l.query(FnList, string(in))
	if resp.Status != shim.OK {
		t.Fatalf("list: %s", resp.Message)
	}
	var page ListPage
	if err := json.Unmarshal(resp.Payload, &page); err != nil {
		t.Fatal(err)
	}
	return page
}

func TestListPrefixAndPagination(t *testing.T) {
	l := newLedger(t)
	for i := 0; i < 7; i++ {
		l.set(t, fmt.Sprintf("sensor/a-%d", i), fmt.Sprintf("ca%d", i))
	}
	for i := 0; i < 3; i++ {
		l.set(t, fmt.Sprintf("camera/b-%d", i), fmt.Sprintf("cb%d", i))
	}

	// Prefix filtering.
	page := l.listPage(t, "sensor/", "", 0)
	if len(page.Records) != 7 || page.Next != "" {
		t.Fatalf("sensor listing = %d records, next %q", len(page.Records), page.Next)
	}
	for _, rec := range page.Records {
		if rec.Key[:7] != "sensor/" {
			t.Errorf("foreign key %q in prefix listing", rec.Key)
		}
	}

	// Pagination: 3 per page over 7 records = 3 pages.
	var all []string
	after := ""
	pages := 0
	for {
		p := l.listPage(t, "sensor/", after, 3)
		pages++
		for _, rec := range p.Records {
			all = append(all, rec.Key)
		}
		if p.Next == "" {
			break
		}
		after = p.Next
		if pages > 5 {
			t.Fatal("pagination did not terminate")
		}
	}
	if pages != 3 || len(all) != 7 {
		t.Errorf("pages = %d, records = %d", pages, len(all))
	}
	seen := map[string]bool{}
	for _, k := range all {
		if seen[k] {
			t.Errorf("duplicate key %q across pages", k)
		}
		seen[k] = true
	}
}

func TestListEmptyAndBadArgs(t *testing.T) {
	l := newLedger(t)
	page := l.listPage(t, "none/", "", 0)
	if len(page.Records) != 0 {
		t.Errorf("empty prefix returned %d records", len(page.Records))
	}
	if resp := l.query(FnList, "not json"); resp.Status == shim.OK {
		t.Error("bad list args accepted")
	}
	if resp := l.query(FnList); resp.Status == shim.OK {
		t.Error("zero list args accepted")
	}
}

func TestGetByCreator(t *testing.T) {
	l := newLedger(t)
	l.set(t, "mine-1", "c1")
	l.set(t, "mine-2", "c2")
	creator := "x509::CN=tester,O=Org1,OU=client" // fixture's creator
	resp := l.query(FnGetByCreator, creator)
	if resp.Status != shim.OK {
		t.Fatalf("getByCreator: %s", resp.Message)
	}
	var recs []Record
	if err := json.Unmarshal(resp.Payload, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("records = %d, want 2", len(recs))
	}
	// Unknown creator yields empty result, not an error.
	resp = l.query(FnGetByCreator, "x509::CN=stranger,O=Org1,OU=client")
	if resp.Status != shim.OK {
		t.Fatal(resp.Message)
	}
	if err := json.Unmarshal(resp.Payload, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("stranger has %d records", len(recs))
	}
}

func TestQueryMeta(t *testing.T) {
	l := newLedger(t)
	mkSet := func(key, metaVal string) {
		in, err := json.Marshal(setArgs{Key: key, Checksum: "c-" + key,
			Meta: map[string]string{"type": metaVal}})
		if err != nil {
			t.Fatal(err)
		}
		if resp := l.invoke(FnSet, string(in)); resp.Status != shim.OK {
			t.Fatal(resp.Message)
		}
	}
	mkSet("a", "raw")
	mkSet("b", "raw")
	mkSet("c", "aggregate")

	resp := l.query(FnQueryMeta, "type", "raw")
	if resp.Status != shim.OK {
		t.Fatal(resp.Message)
	}
	var recs []Record
	if err := json.Unmarshal(resp.Payload, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("raw records = %d, want 2", len(recs))
	}
	if resp := l.query(FnQueryMeta, "type"); resp.Status == shim.OK {
		t.Error("queryMeta with 1 arg accepted")
	}
}

func TestGetChildrenDirectOnly(t *testing.T) {
	l := newLedger(t)
	l.set(t, "root", "c0")
	l.set(t, "mid", "c1", "root")
	l.set(t, "leaf", "c2", "mid")

	resp := l.query(FnGetChildren, "root")
	if resp.Status != shim.OK {
		t.Fatal(resp.Message)
	}
	var recs []Record
	if err := json.Unmarshal(resp.Payload, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "mid" {
		t.Errorf("children of root = %+v, want [mid] only", recs)
	}
}

func TestVersionReported(t *testing.T) {
	l := newLedger(t)
	resp := l.query(FnVersion)
	if resp.Status != shim.OK || string(resp.Payload) != Version {
		t.Errorf("version = %q %s", resp.Payload, resp.Message)
	}
}
