package provenance

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// invokeAs runs an invocation with a specific creator identity through the
// fixture's commit path.
func (l *ledger) invokeAs(creator []byte, fn string, args ...string) shim.Response {
	raw := make([][]byte, len(args))
	for i, a := range args {
		raw[i] = []byte(a)
	}
	return l.commitInvoke(fn, raw, func(stub *shim.Stub) shim.Response {
		// Rebuild the stub with the caller's creator.
		l.block++
		s := shim.NewStub(shim.Config{
			TxID:      fmt.Sprintf("tx-acl-%d", l.block),
			ChannelID: "ch",
			Function:  fn,
			Args:      raw,
			Creator:   creator,
			Timestamp: time.Unix(int64(1570000000+l.block), 0).UTC(),
			State:     l.state,
			History:   l.history,
		})
		resp := l.cc.Invoke(s)
		if resp.Status != shim.OK {
			return resp
		}
		// Copy the rwset writes into the outer stub so commitInvoke applies
		// them (the outer stub ran nothing).
		rws := s.RWSet()
		for _, w := range rws.Writes {
			if w.IsDelete {
				_ = stub.DelState(w.Key)
			} else {
				_ = stub.PutState(w.Key, w.Value)
			}
		}
		return resp
	})
}

func enrollWire(t *testing.T, ca *identity.CA, name string, role identity.Role) []byte {
	t.Helper()
	sid, err := ca.Enroll(name, role)
	if err != nil {
		t.Fatal(err)
	}
	return sid.Serialize()
}

func TestOwnershipEnforced(t *testing.T) {
	l := newLedger(t)
	ca, err := identity.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	alice := enrollWire(t, ca, "alice", identity.RoleClient)
	bob := enrollWire(t, ca, "bob", identity.RoleClient)
	admin := enrollWire(t, ca, "boss", identity.RoleAdmin)

	set := func(creator []byte, key, checksum string) shim.Response {
		in, err := json.Marshal(setArgs{Key: key, Checksum: checksum})
		if err != nil {
			t.Fatal(err)
		}
		return l.invokeAs(creator, FnSet, string(in))
	}

	// Alice creates; Bob may not update or delete; Alice may; admin may.
	if resp := set(alice, "alice-item", "v1"); resp.Status != shim.OK {
		t.Fatalf("alice create: %s", resp.Message)
	}
	if resp := set(bob, "alice-item", "v2-bob"); resp.Status == shim.OK {
		t.Fatal("bob updated alice's record")
	} else if !strings.Contains(resp.Message, "owned by") {
		t.Errorf("unexpected rejection message: %s", resp.Message)
	}
	if resp := l.invokeAs(bob, FnDelete, "alice-item"); resp.Status == shim.OK {
		t.Fatal("bob deleted alice's record")
	}
	if resp := set(alice, "alice-item", "v2"); resp.Status != shim.OK {
		t.Fatalf("alice update: %s", resp.Message)
	}
	if resp := set(admin, "alice-item", "v3-admin"); resp.Status != shim.OK {
		t.Fatalf("admin update: %s", resp.Message)
	}
	if resp := l.invokeAs(admin, FnDelete, "alice-item"); resp.Status != shim.OK {
		t.Fatalf("admin delete: %s", resp.Message)
	}
}

func TestOwnerRecordedFromWireIdentity(t *testing.T) {
	l := newLedger(t)
	ca, err := identity.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	alice := enrollWire(t, ca, "alice", identity.RoleClient)
	in, err := json.Marshal(setArgs{Key: "k", Checksum: "c", Creator: "display-name"})
	if err != nil {
		t.Fatal(err)
	}
	if resp := l.invokeAs(alice, FnSet, string(in)); resp.Status != shim.OK {
		t.Fatal(resp.Message)
	}
	resp := l.query(FnGet, "k")
	if resp.Status != shim.OK {
		t.Fatal(resp.Message)
	}
	rec := decodeRecord(t, resp.Payload)
	if rec.Creator != "display-name" {
		t.Errorf("creator = %q", rec.Creator)
	}
	if rec.Owner != "x509::CN=alice,O=Org1,OU=client" {
		t.Errorf("owner = %q", rec.Owner)
	}
}

func TestResolveClientFallback(t *testing.T) {
	stub := shim.NewStub(shim.Config{Creator: []byte("plain-string-creator")})
	ci := resolveClient(stub)
	if ci.Subject != "plain-string-creator" || ci.Admin {
		t.Errorf("fallback identity = %+v", ci)
	}
	// Valid JSON but no usable cert falls back too.
	stub2 := shim.NewStub(shim.Config{Creator: []byte(`{"mspid":"x","certDer":"aGk="}`)})
	ci2 := resolveClient(stub2)
	if ci2.Admin {
		t.Error("garbage cert granted admin")
	}
}

func TestAuthorizeMutationLegacyRecords(t *testing.T) {
	// Records written before ownership tracking have no Owner; the Creator
	// field acts as owner.
	legacy, err := json.Marshal(Record{Key: "k", Checksum: "c", Creator: "old-owner"})
	if err != nil {
		t.Fatal(err)
	}
	if err := authorizeMutation(legacy, clientIdentity{Subject: "old-owner"}); err != nil {
		t.Errorf("legacy owner rejected: %v", err)
	}
	if err := authorizeMutation(legacy, clientIdentity{Subject: "someone-else"}); err == nil {
		t.Error("legacy record mutated by non-owner")
	}
	if err := authorizeMutation([]byte("corrupt"), clientIdentity{Subject: "x"}); err == nil {
		t.Error("corrupt record authorized")
	}
	if err := authorizeMutation(nil, clientIdentity{Subject: "anyone"}); err != nil {
		t.Errorf("fresh key rejected: %v", err)
	}
}
