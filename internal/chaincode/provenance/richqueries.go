package provenance

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"github.com/hyperprov/hyperprov/internal/richquery"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// This file implements the rich provenance queries served from the state
// database's Mango engine: raw selector queries plus the three lookups the
// paper leans on CouchDB for — records by owner, by type, and by time
// window. The chaincode declares the secondary indexes it needs; the peer
// builds and maintains them at commit time, so none of these queries scans
// the full state.

// Rich-query function names accepted by Invoke.
const (
	FnRichQuery      = "richQuery"      // raw Mango query pass-through
	FnGetByOwner     = "getByOwner"     // records owned by a wire identity
	FnGetByType      = "getByType"      // records whose meta.type matches
	FnGetByTimeRange = "getByTimeRange" // records in [from, to) by tx time
)

// MetaType is the metadata key that types a record ("raw", "aggregate",
// model names, ...). getByType queries it; domain pipelines set it.
const MetaType = "type"

// Indexes declares the secondary indexes the contract's rich queries rely
// on — the analog of the CouchDB index definitions a Fabric chaincode
// package ships in META-INF/statedb. The peer applies them at install time.
func (cc *Chaincode) Indexes() []richquery.IndexDef {
	return []richquery.IndexDef{
		{Name: "by-owner", Field: "owner"},
		{Name: "by-display-creator", Field: "creator"},
		{Name: "by-type", Field: "meta." + MetaType},
		{Name: "by-time", Field: "ts"},
	}
}

// QueryPage is one page of a rich query result.
type QueryPage struct {
	Records []Record `json:"records"`
	// Next is the bookmark for the following page; empty when exhausted.
	Next string `json:"next,omitempty"`
}

// richQuery runs a raw Mango query. args[0] is the query document (selector
// plus optional sort/limit/bookmark); an optional args[1] page size and
// args[2] bookmark switch on explicit pagination.
func (cc *Chaincode) richQuery(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 && len(args) != 3 {
		return shim.Errorf("richQuery: want 1 arg (query) or 3 (query, pageSize, bookmark), got %d", len(args))
	}
	if len(args) == 3 {
		pageSize, err := strconv.Atoi(args[1])
		if err != nil || pageSize <= 0 {
			return shim.Errorf("richQuery: bad page size %q", args[1])
		}
		kvs, next, err := stub.GetQueryResultWithPagination(args[0], pageSize, args[2])
		if err != nil {
			return shim.Errorf("richQuery: %v", err)
		}
		return marshalQueryPage(kvsToRecords(kvs), next)
	}
	kvs, err := stub.GetQueryResult(args[0])
	if err != nil {
		return shim.Errorf("richQuery: %v", err)
	}
	return marshalQueryPage(kvsToRecords(kvs), "")
}

// getByOwner returns every live record owned by the wire identity args[0],
// served from the by-owner index.
func (cc *Chaincode) getByOwner(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("getByOwner: want 1 arg, got %d", len(args))
	}
	return cc.fieldQuery(stub, "owner", args[0])
}

// getByType returns every live record whose meta.type equals args[0],
// served from the by-type index.
func (cc *Chaincode) getByType(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 1 {
		return shim.Errorf("getByType: want 1 arg, got %d", len(args))
	}
	return cc.fieldQuery(stub, "meta."+MetaType, args[0])
}

// getByTimeRange returns records whose transaction timestamp lies in
// [args[0], args[1]) — RFC 3339 times — ordered oldest first, served from
// the by-time index over the record's millisecond timestamp field.
func (cc *Chaincode) getByTimeRange(stub *shim.Stub) shim.Response {
	args := stub.StringArgs()
	if len(args) != 2 {
		return shim.Errorf("getByTimeRange: want 2 args (from, to), got %d", len(args))
	}
	from, err := time.Parse(time.RFC3339, args[0])
	if err != nil {
		return shim.Errorf("getByTimeRange: bad from time: %v", err)
	}
	to, err := time.Parse(time.RFC3339, args[1])
	if err != nil {
		return shim.Errorf("getByTimeRange: bad to time: %v", err)
	}
	query := map[string]any{
		"selector": map[string]any{
			"ts": map[string]any{"$gte": from.UnixMilli(), "$lt": to.UnixMilli()},
		},
		"sort": []any{map[string]string{"ts": "asc"}},
	}
	raw, err := json.Marshal(query)
	if err != nil {
		return shim.Errorf("getByTimeRange: marshal query: %v", err)
	}
	kvs, err := stub.GetQueryResult(string(raw))
	if err != nil {
		return shim.Errorf("getByTimeRange: %v", err)
	}
	payload, err := json.Marshal(kvsToRecords(kvs))
	if err != nil {
		return shim.Errorf("getByTimeRange: marshal: %v", err)
	}
	return shim.Success(payload)
}

// fieldQuery runs an equality rich query on one field and returns the
// matching records as a JSON array.
func (cc *Chaincode) fieldQuery(stub *shim.Stub, field, value string) shim.Response {
	raw, err := equalitySelector(field, value)
	if err != nil {
		return shim.Errorf("query %s: %v", field, err)
	}
	kvs, err := stub.GetQueryResult(raw)
	if err != nil {
		return shim.Errorf("query %s: %v", field, err)
	}
	payload, err := json.Marshal(kvsToRecords(kvs))
	if err != nil {
		return shim.Errorf("query %s: marshal: %v", field, err)
	}
	return shim.Success(payload)
}

// equalitySelector builds {"selector": {field: {"$eq": value}}}.
func equalitySelector(field, value string) (string, error) {
	raw, err := json.Marshal(map[string]any{
		"selector": map[string]any{field: map[string]any{"$eq": value}},
	})
	if err != nil {
		return "", fmt.Errorf("marshal selector: %w", err)
	}
	return string(raw), nil
}

// kvsToRecords decodes query results into records, skipping undecodable
// values (none are expected to match a record selector; defensive).
func kvsToRecords(kvs []statedb.KV) []Record {
	out := make([]Record, 0, len(kvs))
	for _, kv := range kvs {
		var rec Record
		if err := json.Unmarshal(kv.Value, &rec); err != nil {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// marshalQueryPage renders a QueryPage response.
func marshalQueryPage(recs []Record, next string) shim.Response {
	payload, err := json.Marshal(QueryPage{Records: recs, Next: next})
	if err != nil {
		return shim.Errorf("richQuery: marshal: %v", err)
	}
	return shim.Success(payload)
}
