package provenance

import (
	"crypto/x509"
	"encoding/json"
	"fmt"

	"github.com/hyperprov/hyperprov/internal/shim"
)

// This file implements the ownership model: every record is bound to the
// verified wire identity that created it (the paper's "data ownership"
// field), and only that owner — or an org admin — may update or delete the
// record. The peer has already verified the client's signature before the
// chaincode runs, so the creator bytes on the stub are trustworthy.

// clientIdentity is the chaincode-side view of the submitting client,
// extracted from the serialized identity the peer attached to the stub
// (the analog of Fabric's client-identity (cid) library).
type clientIdentity struct {
	// Subject is the canonical creator string recorded on records.
	Subject string
	// Admin reports whether the certificate carries the admin role.
	Admin bool
}

// wireIdentity mirrors the serialized-identity wire form.
type wireIdentity struct {
	MSPID   string `json:"mspid"`
	CertDER []byte `json:"certDer"`
}

// resolveClient extracts the verified identity from the stub. Creators that
// are not serialized identities (direct-drive tests, legacy callers) are
// used verbatim as the subject with no admin rights.
func resolveClient(stub *shim.Stub) clientIdentity {
	raw := stub.Creator()
	var wi wireIdentity
	if err := json.Unmarshal(raw, &wi); err != nil || len(wi.CertDER) == 0 {
		return clientIdentity{Subject: string(raw)}
	}
	cert, err := x509.ParseCertificate(wi.CertDER)
	if err != nil {
		return clientIdentity{Subject: string(raw)}
	}
	org, ou := "", ""
	if len(cert.Subject.Organization) > 0 {
		org = cert.Subject.Organization[0]
	}
	if len(cert.Subject.OrganizationalUnit) > 0 {
		ou = cert.Subject.OrganizationalUnit[0]
	}
	return clientIdentity{
		Subject: fmt.Sprintf("x509::CN=%s,O=%s,OU=%s", cert.Subject.CommonName, org, ou),
		Admin:   ou == "admin",
	}
}

// authorizeMutation enforces owner-only updates/deletes. existing is the
// raw current record (nil for a fresh key).
func authorizeMutation(existing []byte, client clientIdentity) error {
	if existing == nil || client.Admin {
		return nil
	}
	var rec Record
	if err := json.Unmarshal(existing, &rec); err != nil {
		return fmt.Errorf("corrupt existing record: %w", err)
	}
	owner := rec.Owner
	if owner == "" {
		owner = rec.Creator // records written before ownership tracking
	}
	if owner != client.Subject {
		return fmt.Errorf("record owned by %q, not %q", owner, client.Subject)
	}
	return nil
}
