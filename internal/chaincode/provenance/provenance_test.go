package provenance

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/historydb"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/statedb"
)

// ledger is a single-peer test harness: it invokes the chaincode and, on
// success, commits the rwset writes to state and history (the job the peer
// commit pipeline does in production).
type ledger struct {
	t       *testing.T
	cc      *Chaincode
	state   statedb.StateDB
	history *historydb.DB
	block   uint64
}

// newLedger uses the plain LevelDB-flavour store, so rich queries exercise
// the shim's filtered-scan fallback path.
func newLedger(t *testing.T) *ledger {
	t.Helper()
	return newLedgerOn(t, statedb.New())
}

func newLedgerOn(t *testing.T, state statedb.StateDB) *ledger {
	t.Helper()
	l := &ledger{t: t, cc: New(), state: state, history: historydb.New(), block: 0}
	resp := l.commitInvoke("", nil, func(stub *shim.Stub) shim.Response { return l.cc.Init(stub) })
	if resp.Status != shim.OK {
		t.Fatalf("Init: %+v", resp)
	}
	return l
}

func (l *ledger) stub(fn string, args [][]byte) *shim.Stub {
	l.block++
	return shim.NewStub(shim.Config{
		TxID:      fmt.Sprintf("tx-%d", l.block),
		ChannelID: "ch",
		Function:  fn,
		Args:      args,
		Creator:   []byte("x509::CN=tester,O=Org1,OU=client"),
		Timestamp: time.Unix(int64(1570000000+l.block), 0).UTC(),
		State:     l.state,
		History:   l.history,
	})
}

func (l *ledger) commitInvoke(fn string, args [][]byte, run func(*shim.Stub) shim.Response) shim.Response {
	stub := l.stub(fn, args)
	resp := run(stub)
	if resp.Status != shim.OK {
		return resp
	}
	rws := stub.RWSet()
	batch := statedb.NewUpdateBatch()
	ver := statedb.Version{BlockNum: l.block}
	for _, w := range rws.Writes {
		if w.IsDelete {
			batch.Delete(w.Key, ver)
		} else {
			batch.Put(w.Key, w.Value, ver)
		}
		l.history.Record(w.Key, historydb.Entry{
			TxID: stub.TxID(), BlockNum: l.block, Value: w.Value,
			IsDelete: w.IsDelete, Timestamp: stub.TxTimestamp(),
		})
	}
	if err := l.state.ApplyUpdates(batch, ver); err != nil {
		l.t.Fatalf("commit: %v", err)
	}
	return resp
}

// invoke runs a function through the full simulate-and-commit path.
func (l *ledger) invoke(fn string, args ...string) shim.Response {
	raw := make([][]byte, len(args))
	for i, a := range args {
		raw[i] = []byte(a)
	}
	return l.commitInvoke(fn, raw, func(stub *shim.Stub) shim.Response { return l.cc.Invoke(stub) })
}

// query runs a read-only invocation without committing.
func (l *ledger) query(fn string, args ...string) shim.Response {
	raw := make([][]byte, len(args))
	for i, a := range args {
		raw[i] = []byte(a)
	}
	return l.cc.Invoke(l.stub(fn, raw))
}

func (l *ledger) set(t *testing.T, key, checksum string, parents ...string) {
	t.Helper()
	in := setArgs{Key: key, Checksum: checksum, Location: "offchain://store/" + key, Parents: parents}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp := l.invoke(FnSet, string(b))
	if resp.Status != shim.OK {
		t.Fatalf("set %q: %s", key, resp.Message)
	}
}

func decodeRecord(t *testing.T, payload []byte) Record {
	t.Helper()
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		t.Fatalf("decode record: %v", err)
	}
	return r
}

func TestSetGetRoundTrip(t *testing.T) {
	l := newLedger(t)
	l.set(t, "item1", "sha256:abc")
	resp := l.query(FnGet, "item1")
	if resp.Status != shim.OK {
		t.Fatalf("get: %s", resp.Message)
	}
	rec := decodeRecord(t, resp.Payload)
	if rec.Key != "item1" || rec.Checksum != "sha256:abc" {
		t.Errorf("record = %+v", rec)
	}
	if rec.Creator == "" || rec.TxID == "" {
		t.Errorf("record missing provenance context: %+v", rec)
	}
	if rec.Location != "offchain://store/item1" {
		t.Errorf("location = %q", rec.Location)
	}
}

func TestGetMissing(t *testing.T) {
	l := newLedger(t)
	if resp := l.query(FnGet, "ghost"); resp.Status == shim.OK {
		t.Error("get of missing key succeeded")
	}
}

func TestSetValidation(t *testing.T) {
	l := newLedger(t)
	tests := []struct {
		name string
		args setArgs
	}{
		{"empty key", setArgs{Checksum: "c"}},
		{"empty checksum", setArgs{Key: "k"}},
		{"self parent", setArgs{Key: "k", Checksum: "c", Parents: []string{"k"}}},
		{"unknown parent", setArgs{Key: "k", Checksum: "c", Parents: []string{"missing"}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b, err := json.Marshal(tt.args)
			if err != nil {
				t.Fatal(err)
			}
			if resp := l.invoke(FnSet, string(b)); resp.Status == shim.OK {
				t.Errorf("set accepted invalid args %+v", tt.args)
			}
		})
	}
	if resp := l.invoke(FnSet, "not json"); resp.Status == shim.OK {
		t.Error("set accepted non-JSON args")
	}
	if resp := l.invoke(FnSet); resp.Status == shim.OK {
		t.Error("set accepted zero args")
	}
}

func TestHistoryTracksVersions(t *testing.T) {
	l := newLedger(t)
	l.set(t, "item", "sha256:v1")
	l.set(t, "item", "sha256:v2")
	l.set(t, "item", "sha256:v3")
	resp := l.query(FnGetHistory, "item")
	if resp.Status != shim.OK {
		t.Fatalf("getHistory: %s", resp.Message)
	}
	var hist []HistoryRecord
	if err := json.Unmarshal(resp.Payload, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history has %d entries, want 3", len(hist))
	}
	if hist[0].Record.Checksum != "sha256:v1" || hist[2].Record.Checksum != "sha256:v3" {
		t.Errorf("history order wrong: %+v", hist)
	}
}

func TestGetByChecksum(t *testing.T) {
	l := newLedger(t)
	l.set(t, "item1", "sha256:unique")
	resp := l.query(FnGetByChecksum, "sha256:unique")
	if resp.Status != shim.OK {
		t.Fatalf("getByChecksum: %s", resp.Message)
	}
	if rec := decodeRecord(t, resp.Payload); rec.Key != "item1" {
		t.Errorf("resolved key = %q", rec.Key)
	}
	if resp := l.query(FnGetByChecksum, "sha256:nope"); resp.Status == shim.OK {
		t.Error("unknown checksum resolved")
	}
}

func TestLineageAncestors(t *testing.T) {
	l := newLedger(t)
	// raw1, raw2 -> derived -> final
	l.set(t, "raw1", "c1")
	l.set(t, "raw2", "c2")
	l.set(t, "derived", "c3", "raw1", "raw2")
	l.set(t, "final", "c4", "derived")

	resp := l.query(FnGetLineage, "final")
	if resp.Status != shim.OK {
		t.Fatalf("getLineage: %s", resp.Message)
	}
	var recs []Record
	if err := json.Unmarshal(resp.Payload, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("lineage has %d records, want 4 (final, derived, raw1, raw2)", len(recs))
	}
	if recs[0].Key != "final" {
		t.Errorf("lineage[0] = %q, want final (BFS from query key)", recs[0].Key)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		seen[r.Key] = true
	}
	for _, want := range []string{"final", "derived", "raw1", "raw2"} {
		if !seen[want] {
			t.Errorf("lineage missing %q", want)
		}
	}
}

func TestLineageDiamondNoDuplicates(t *testing.T) {
	l := newLedger(t)
	// root -> a, root -> b, a+b -> leaf (diamond)
	l.set(t, "root", "c0")
	l.set(t, "a", "ca", "root")
	l.set(t, "b", "cb", "root")
	l.set(t, "leaf", "cl", "a", "b")
	resp := l.query(FnGetLineage, "leaf")
	if resp.Status != shim.OK {
		t.Fatal(resp.Message)
	}
	var recs []Record
	if err := json.Unmarshal(resp.Payload, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("diamond lineage = %d records, want 4 (root deduplicated)", len(recs))
	}
}

func TestDescendants(t *testing.T) {
	l := newLedger(t)
	l.set(t, "root", "c0")
	l.set(t, "mid", "c1", "root")
	l.set(t, "leaf1", "c2", "mid")
	l.set(t, "leaf2", "c3", "mid")
	l.set(t, "unrelated", "c4")

	resp := l.query(FnGetDescendants, "root")
	if resp.Status != shim.OK {
		t.Fatalf("getDescendants: %s", resp.Message)
	}
	var recs []Record
	if err := json.Unmarshal(resp.Payload, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("descendants = %d, want 3", len(recs))
	}
	seen := map[string]bool{}
	for _, r := range recs {
		seen[r.Key] = true
	}
	if seen["unrelated"] || seen["root"] {
		t.Errorf("descendants include wrong keys: %v", seen)
	}
}

func TestDeleteTombstonesButKeepsHistory(t *testing.T) {
	l := newLedger(t)
	l.set(t, "item", "sha256:x")
	if resp := l.invoke(FnDelete, "item"); resp.Status != shim.OK {
		t.Fatalf("delete: %s", resp.Message)
	}
	if resp := l.query(FnGet, "item"); resp.Status == shim.OK {
		t.Error("get after delete succeeded")
	}
	// History survives the tombstone.
	resp := l.query(FnGetHistory, "item")
	if resp.Status != shim.OK {
		t.Fatal(resp.Message)
	}
	var hist []HistoryRecord
	if err := json.Unmarshal(resp.Payload, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || !hist[1].IsDelete {
		t.Errorf("history after delete = %+v", hist)
	}
	// Checksum index removed.
	if resp := l.query(FnGetByChecksum, "sha256:x"); resp.Status == shim.OK {
		t.Error("checksum resolves after delete")
	}
	if resp := l.invoke(FnDelete, "item"); resp.Status == shim.OK {
		t.Error("double delete succeeded")
	}
}

func TestStatsCounter(t *testing.T) {
	l := newLedger(t)
	readStats := func() Stats {
		resp := l.query(FnGetStats)
		if resp.Status != shim.OK {
			t.Fatalf("getStats: %s", resp.Message)
		}
		var s Stats
		if err := json.Unmarshal(resp.Payload, &s); err != nil {
			t.Fatal(err)
		}
		return s
	}
	if s := readStats(); s.Records != 0 {
		t.Errorf("initial records = %d", s.Records)
	}
	l.set(t, "a", "c1")
	l.set(t, "b", "c2")
	l.set(t, "a", "c1b") // update, not a new record
	if s := readStats(); s.Records != 2 {
		t.Errorf("records = %d, want 2", s.Records)
	}
	if resp := l.invoke(FnDelete, "a"); resp.Status != shim.OK {
		t.Fatal(resp.Message)
	}
	if s := readStats(); s.Records != 1 {
		t.Errorf("records after delete = %d, want 1", s.Records)
	}
}

func TestUnknownFunction(t *testing.T) {
	l := newLedger(t)
	if resp := l.query("fly"); resp.Status == shim.OK {
		t.Error("unknown function succeeded")
	}
}

func TestArgCountErrors(t *testing.T) {
	l := newLedger(t)
	l.set(t, "k", "c")
	for _, fn := range []string{FnGet, FnGetHistory, FnGetByChecksum, FnGetLineage, FnGetDescendants, FnDelete} {
		if resp := l.query(fn); resp.Status == shim.OK {
			t.Errorf("%s with 0 args succeeded", fn)
		}
		if resp := l.query(fn, "a", "b"); resp.Status == shim.OK {
			t.Errorf("%s with 2 args succeeded", fn)
		}
	}
}

func TestDeepChainLineage(t *testing.T) {
	l := newLedger(t)
	l.set(t, "n0", "c0")
	for i := 1; i < 30; i++ {
		l.set(t, fmt.Sprintf("n%d", i), fmt.Sprintf("c%d", i), fmt.Sprintf("n%d", i-1))
	}
	resp := l.query(FnGetLineage, "n29")
	if resp.Status != shim.OK {
		t.Fatal(resp.Message)
	}
	var recs []Record
	if err := json.Unmarshal(resp.Payload, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 30 {
		t.Errorf("deep lineage = %d records, want 30", len(recs))
	}
}
