// Package core is HyperProv itself: the client library that mirrors the
// paper's NodeJS library, hiding the blockchain machinery behind a small
// operator set. Post/Get/GetKeyHistory/CheckTxn work with provenance
// metadata on-chain; StoreData/GetData move the payload to off-chain
// storage, compute its checksum, and bind the two together; lineage
// operators traverse the provenance DAG. Every operator maps onto the
// equivalent operation the paper's §3 lists.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
)

// Errors returned by the client.
var (
	ErrNoLocation = errors.New("hyperprov: record has no off-chain location")
	ErrTampered   = errors.New("hyperprov: off-chain data fails checksum verification")
	ErrTxNotFound = errors.New("hyperprov: transaction not found")
)

// Record re-exports the on-chain provenance record type.
type Record = provenance.Record

// HistoryRecord re-exports one historical record version.
type HistoryRecord = provenance.HistoryRecord

// Stats re-exports the contract statistics.
type Stats = provenance.Stats

// PostOptions carries the optional fields of a provenance record.
type PostOptions struct {
	// Location points at the off-chain payload (set automatically by
	// StoreData).
	Location string
	// Parents are the keys of the items this item was derived from.
	Parents []string
	// Meta is free-form domain-specific metadata (the paper's custom
	// field for extensions beyond the Open Provenance Model).
	Meta map[string]string
}

// TxReceipt reports a committed provenance transaction.
type TxReceipt struct {
	TxID     string
	BlockNum uint64
	// Latency is the submit-to-commit wall time (scaled if the network
	// clock is scaled).
	Latency time.Duration
}

// Client is a HyperProv handle bound to one identity on one channel of one
// network.
type Client struct {
	gw    *fabric.Gateway
	store offchain.Store
}

// Option refines a client at construction time.
type Option func(*options)

type options struct {
	channel string
	timeout time.Duration
	store   offchain.Store
}

// WithChannel rebinds the client to another channel of the gateway's
// network. The derived binding keeps the gateway's identity but fans
// proposals to the target channel's peers; remote endorsers attached to the
// original gateway are not carried over.
func WithChannel(ch string) Option { return func(o *options) { o.channel = ch } }

// WithTimeout sets the submit-to-commit wait on the client's gateway
// binding. Zero or negative keeps the gateway's current timeout.
func WithTimeout(d time.Duration) Option { return func(o *options) { o.timeout = d } }

// WithStore attaches the off-chain storage backend, enabling the
// StoreData/GetData operators.
func WithStore(s offchain.Store) Option { return func(o *options) { o.store = s } }

// New creates a HyperProv client over a fabric gateway. With no options the
// client is bound to the gateway's channel with on-chain operators only;
// see WithChannel, WithTimeout, and WithStore.
func New(gw *fabric.Gateway, opts ...Option) (*Client, error) {
	if gw == nil {
		return nil, errors.New("hyperprov: nil gateway")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.channel != "" && o.channel != gw.ChannelID() {
		var err error
		if gw, err = gw.ForChannel(o.channel); err != nil {
			return nil, err
		}
	}
	if o.timeout > 0 {
		gw.SetCommitTimeout(o.timeout)
	}
	return &Client{gw: gw, store: o.store}, nil
}

// Config assembles a client the pre-options way.
//
// Deprecated: use New(gw, WithStore(s)).
type Config struct {
	// Gateway is the fabric client connection.
	Gateway *fabric.Gateway
	// Store is the off-chain storage backend; nil disables the
	// StoreData/GetData operators.
	Store offchain.Store
}

// NewClient creates a HyperProv client from the legacy Config struct.
//
// Deprecated: use New(gw, WithStore(s)).
func NewClient(cfg Config) (*Client, error) {
	return New(cfg.Gateway, WithStore(cfg.Store))
}

// Subject returns the identity string recorded as creator on this client's
// records.
func (c *Client) Subject() string {
	return c.gw.Identity().Identity().Subject()
}

// Channel returns the channel this client is bound to.
func (c *Client) Channel() string { return c.gw.ChannelID() }

// Post writes a provenance record for key with the given checksum. This is
// the metadata-only path: the payload is assumed to live elsewhere.
func (c *Client) Post(key, checksum string, opts PostOptions) (*TxReceipt, error) {
	in := map[string]any{
		"key":      key,
		"checksum": checksum,
		"creator":  c.Subject(),
	}
	if opts.Location != "" {
		in["location"] = opts.Location
	}
	if len(opts.Parents) > 0 {
		in["parents"] = opts.Parents
	}
	if len(opts.Meta) > 0 {
		in["meta"] = opts.Meta
	}
	raw, err := json.Marshal(in)
	if err != nil {
		return nil, fmt.Errorf("hyperprov: marshal post args: %w", err)
	}
	res, err := c.gw.Submit(provenance.ChaincodeName, provenance.FnSet, raw)
	if err != nil {
		return nil, err
	}
	return &TxReceipt{TxID: res.TxID, BlockNum: res.BlockNum, Latency: res.Latency}, nil
}

// Get returns the latest provenance record for key.
func (c *Client) Get(key string) (*Record, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnGet, []byte(key))
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("hyperprov: decode record: %w", err)
	}
	return &rec, nil
}

// GetKeyHistory returns every committed version of key's record, oldest
// first — the paper's operation-history query.
func (c *Client) GetKeyHistory(key string) ([]HistoryRecord, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnGetHistory, []byte(key))
	if err != nil {
		return nil, err
	}
	var hist []HistoryRecord
	if err := json.Unmarshal(payload, &hist); err != nil {
		return nil, fmt.Errorf("hyperprov: decode history: %w", err)
	}
	return hist, nil
}

// GetByChecksum resolves a data checksum to its provenance record.
func (c *Client) GetByChecksum(checksum string) (*Record, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnGetByChecksum, []byte(checksum))
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("hyperprov: decode record: %w", err)
	}
	return &rec, nil
}

// GetLineage returns key's record followed by all its ancestors
// (breadth-first over parents).
func (c *Client) GetLineage(key string) ([]Record, error) {
	return c.recordList(provenance.FnGetLineage, key)
}

// GetDescendants returns every record transitively derived from key.
func (c *Client) GetDescendants(key string) ([]Record, error) {
	return c.recordList(provenance.FnGetDescendants, key)
}

func (c *Client) recordList(fn, key string) ([]Record, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, fn, []byte(key))
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(payload, &recs); err != nil {
		return nil, fmt.Errorf("hyperprov: decode records: %w", err)
	}
	return recs, nil
}

// Delete tombstones key's record (history is preserved on-chain).
func (c *Client) Delete(key string) (*TxReceipt, error) {
	res, err := c.gw.Submit(provenance.ChaincodeName, provenance.FnDelete, []byte(key))
	if err != nil {
		return nil, err
	}
	return &TxReceipt{TxID: res.TxID, BlockNum: res.BlockNum, Latency: res.Latency}, nil
}

// GetStats returns contract-level statistics.
func (c *Client) GetStats() (*Stats, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnGetStats)
	if err != nil {
		return nil, err
	}
	var s Stats
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("hyperprov: decode stats: %w", err)
	}
	return &s, nil
}

// CheckTxn looks up a transaction by id on the committing peer's ledger and
// returns its envelope timestamp, block number, and validation status.
func (c *Client) CheckTxn(txID string) (*TxStatus, error) {
	for _, p := range c.gwPeers() {
		env, code, err := p.Ledger().GetTx(txID)
		if err != nil {
			continue
		}
		return &TxStatus{
			TxID:      txID,
			Valid:     code == blockstore.TxValid,
			Code:      code.String(),
			Timestamp: env.Timestamp,
			Function:  env.Function,
		}, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrTxNotFound, txID)
}

// TxStatus is the result of CheckTxn.
type TxStatus struct {
	TxID      string
	Valid     bool
	Code      string
	Timestamp time.Time
	Function  string
}

// StoreData is the paper's flagship operator: it uploads data to off-chain
// storage, computes the SHA-256 checksum (the client-side cost that grows
// with payload size in Figs 1–2), and posts the binding provenance record.
func (c *Client) StoreData(key string, data []byte, opts PostOptions) (*TxReceipt, error) {
	if c.store == nil {
		return nil, errors.New("hyperprov: no off-chain store configured")
	}
	// Model the client-side costs: checksum on the CPU, then the SSHFS
	// upload to the storage node. These two terms grow with payload size
	// and dominate the large-payload points of Figs 1–2.
	if exec := c.gw.Executor(); exec != nil {
		exec.Hash(len(data))
		exec.StoreTransfer(len(data))
	}
	checksum := offchain.Checksum(data)
	ref, err := c.store.Put(data)
	if err != nil {
		return nil, fmt.Errorf("hyperprov: off-chain put: %w", err)
	}
	opts.Location = ref
	return c.Post(key, checksum, opts)
}

// GetData fetches key's record, downloads the off-chain payload, and
// verifies it against the on-chain checksum, returning both. A checksum
// mismatch means the off-chain copy was tampered with.
func (c *Client) GetData(key string) ([]byte, *Record, error) {
	if c.store == nil {
		return nil, nil, errors.New("hyperprov: no off-chain store configured")
	}
	rec, err := c.Get(key)
	if err != nil {
		return nil, nil, err
	}
	if rec.Location == "" {
		return nil, rec, ErrNoLocation
	}
	data, err := c.store.Get(rec.Location)
	if err != nil {
		if errors.Is(err, offchain.ErrChecksumMismatch) {
			return nil, rec, ErrTampered
		}
		return nil, rec, fmt.Errorf("hyperprov: off-chain get: %w", err)
	}
	if exec := c.gw.Executor(); exec != nil {
		exec.StoreTransfer(len(data))
		exec.Hash(len(data))
	}
	if err := offchain.VerifyChecksum(data, rec.Checksum); err != nil {
		return nil, rec, ErrTampered
	}
	return data, rec, nil
}

// VerifyLedger audits the hash chain of every peer's ledger copy.
func (c *Client) VerifyLedger() error {
	for _, p := range c.gwPeers() {
		if err := p.Ledger().VerifyChain(); err != nil {
			return fmt.Errorf("hyperprov: %s: %w", p.Name(), err)
		}
	}
	return nil
}

// gwPeers exposes the client channel's peers for ledger-level queries
// (CheckTxn and audits operate below the chaincode layer, as in the paper's
// tooling). Scoping to the bound channel keeps audits from reading sibling
// tenants' ledgers.
func (c *Client) gwPeers() []peerLedger {
	peers, err := c.gw.Network().ChannelPeers(c.gw.ChannelID())
	if err != nil {
		return nil
	}
	out := make([]peerLedger, len(peers))
	for i, p := range peers {
		out[i] = p
	}
	return out
}

// peerLedger is the slice of peer behaviour the client needs.
type peerLedger interface {
	Name() string
	Ledger() blockstore.BlockStore
}
