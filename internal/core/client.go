// Package core is HyperProv itself: the client library that mirrors the
// paper's NodeJS library, hiding the blockchain machinery behind a small
// operator set. Post/Get/GetKeyHistory/CheckTxn work with provenance
// metadata on-chain; StoreData/GetData move the payload to off-chain
// storage, compute its checksum, and bind the two together; lineage
// operators traverse the provenance DAG. Every operator maps onto the
// equivalent operation the paper's §3 lists.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
)

// Errors returned by the client.
var (
	ErrNoLocation = errors.New("hyperprov: record has no off-chain location")
	ErrTampered   = errors.New("hyperprov: off-chain data fails checksum verification")
	ErrTxNotFound = errors.New("hyperprov: transaction not found")
)

// Record re-exports the on-chain provenance record type.
type Record = provenance.Record

// HistoryRecord re-exports one historical record version.
type HistoryRecord = provenance.HistoryRecord

// Stats re-exports the contract statistics.
type Stats = provenance.Stats

// PostOptions carries the optional fields of a provenance record.
type PostOptions struct {
	// Location points at the off-chain payload (set automatically by
	// StoreData).
	Location string
	// Parents are the keys of the items this item was derived from.
	Parents []string
	// Meta is free-form domain-specific metadata (the paper's custom
	// field for extensions beyond the Open Provenance Model).
	Meta map[string]string
}

// TxReceipt reports a committed provenance transaction.
type TxReceipt struct {
	TxID     string
	BlockNum uint64
	// Latency is the submit-to-commit wall time (scaled if the network
	// clock is scaled).
	Latency time.Duration
}

// Client is a HyperProv handle bound to one identity on one network.
type Client struct {
	gw    *fabric.Gateway
	store offchain.Store
}

// Config assembles a client.
type Config struct {
	// Gateway is the fabric client connection.
	Gateway *fabric.Gateway
	// Store is the off-chain storage backend; nil disables the
	// StoreData/GetData operators.
	Store offchain.Store
}

// New creates a HyperProv client.
func New(cfg Config) (*Client, error) {
	if cfg.Gateway == nil {
		return nil, errors.New("hyperprov: nil gateway")
	}
	return &Client{gw: cfg.Gateway, store: cfg.Store}, nil
}

// Subject returns the identity string recorded as creator on this client's
// records.
func (c *Client) Subject() string {
	return c.gw.Identity().Identity().Subject()
}

// Post writes a provenance record for key with the given checksum. This is
// the metadata-only path: the payload is assumed to live elsewhere.
func (c *Client) Post(key, checksum string, opts PostOptions) (*TxReceipt, error) {
	in := map[string]any{
		"key":      key,
		"checksum": checksum,
		"creator":  c.Subject(),
	}
	if opts.Location != "" {
		in["location"] = opts.Location
	}
	if len(opts.Parents) > 0 {
		in["parents"] = opts.Parents
	}
	if len(opts.Meta) > 0 {
		in["meta"] = opts.Meta
	}
	raw, err := json.Marshal(in)
	if err != nil {
		return nil, fmt.Errorf("hyperprov: marshal post args: %w", err)
	}
	res, err := c.gw.Submit(provenance.ChaincodeName, provenance.FnSet, raw)
	if err != nil {
		return nil, err
	}
	return &TxReceipt{TxID: res.TxID, BlockNum: res.BlockNum, Latency: res.Latency}, nil
}

// Get returns the latest provenance record for key.
func (c *Client) Get(key string) (*Record, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnGet, []byte(key))
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("hyperprov: decode record: %w", err)
	}
	return &rec, nil
}

// GetKeyHistory returns every committed version of key's record, oldest
// first — the paper's operation-history query.
func (c *Client) GetKeyHistory(key string) ([]HistoryRecord, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnGetHistory, []byte(key))
	if err != nil {
		return nil, err
	}
	var hist []HistoryRecord
	if err := json.Unmarshal(payload, &hist); err != nil {
		return nil, fmt.Errorf("hyperprov: decode history: %w", err)
	}
	return hist, nil
}

// GetByChecksum resolves a data checksum to its provenance record.
func (c *Client) GetByChecksum(checksum string) (*Record, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnGetByChecksum, []byte(checksum))
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("hyperprov: decode record: %w", err)
	}
	return &rec, nil
}

// GetLineage returns key's record followed by all its ancestors
// (breadth-first over parents).
func (c *Client) GetLineage(key string) ([]Record, error) {
	return c.recordList(provenance.FnGetLineage, key)
}

// GetDescendants returns every record transitively derived from key.
func (c *Client) GetDescendants(key string) ([]Record, error) {
	return c.recordList(provenance.FnGetDescendants, key)
}

func (c *Client) recordList(fn, key string) ([]Record, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, fn, []byte(key))
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(payload, &recs); err != nil {
		return nil, fmt.Errorf("hyperprov: decode records: %w", err)
	}
	return recs, nil
}

// Delete tombstones key's record (history is preserved on-chain).
func (c *Client) Delete(key string) (*TxReceipt, error) {
	res, err := c.gw.Submit(provenance.ChaincodeName, provenance.FnDelete, []byte(key))
	if err != nil {
		return nil, err
	}
	return &TxReceipt{TxID: res.TxID, BlockNum: res.BlockNum, Latency: res.Latency}, nil
}

// GetStats returns contract-level statistics.
func (c *Client) GetStats() (*Stats, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnGetStats)
	if err != nil {
		return nil, err
	}
	var s Stats
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("hyperprov: decode stats: %w", err)
	}
	return &s, nil
}

// CheckTxn looks up a transaction by id on the committing peer's ledger and
// returns its envelope timestamp, block number, and validation status.
func (c *Client) CheckTxn(txID string) (*TxStatus, error) {
	for _, p := range c.gwPeers() {
		env, code, err := p.Ledger().GetTx(txID)
		if err != nil {
			continue
		}
		return &TxStatus{
			TxID:      txID,
			Valid:     code == blockstore.TxValid,
			Code:      code.String(),
			Timestamp: env.Timestamp,
			Function:  env.Function,
		}, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrTxNotFound, txID)
}

// TxStatus is the result of CheckTxn.
type TxStatus struct {
	TxID      string
	Valid     bool
	Code      string
	Timestamp time.Time
	Function  string
}

// StoreData is the paper's flagship operator: it uploads data to off-chain
// storage, computes the SHA-256 checksum (the client-side cost that grows
// with payload size in Figs 1–2), and posts the binding provenance record.
func (c *Client) StoreData(key string, data []byte, opts PostOptions) (*TxReceipt, error) {
	if c.store == nil {
		return nil, errors.New("hyperprov: no off-chain store configured")
	}
	// Model the client-side costs: checksum on the CPU, then the SSHFS
	// upload to the storage node. These two terms grow with payload size
	// and dominate the large-payload points of Figs 1–2.
	if exec := c.gw.Executor(); exec != nil {
		exec.Hash(len(data))
		exec.StoreTransfer(len(data))
	}
	checksum := offchain.Checksum(data)
	ref, err := c.store.Put(data)
	if err != nil {
		return nil, fmt.Errorf("hyperprov: off-chain put: %w", err)
	}
	opts.Location = ref
	return c.Post(key, checksum, opts)
}

// GetData fetches key's record, downloads the off-chain payload, and
// verifies it against the on-chain checksum, returning both. A checksum
// mismatch means the off-chain copy was tampered with.
func (c *Client) GetData(key string) ([]byte, *Record, error) {
	if c.store == nil {
		return nil, nil, errors.New("hyperprov: no off-chain store configured")
	}
	rec, err := c.Get(key)
	if err != nil {
		return nil, nil, err
	}
	if rec.Location == "" {
		return nil, rec, ErrNoLocation
	}
	data, err := c.store.Get(rec.Location)
	if err != nil {
		if errors.Is(err, offchain.ErrChecksumMismatch) {
			return nil, rec, ErrTampered
		}
		return nil, rec, fmt.Errorf("hyperprov: off-chain get: %w", err)
	}
	if exec := c.gw.Executor(); exec != nil {
		exec.StoreTransfer(len(data))
		exec.Hash(len(data))
	}
	if err := offchain.VerifyChecksum(data, rec.Checksum); err != nil {
		return nil, rec, ErrTampered
	}
	return data, rec, nil
}

// VerifyLedger audits the hash chain of every peer's ledger copy.
func (c *Client) VerifyLedger() error {
	for _, p := range c.gwPeers() {
		if err := p.Ledger().VerifyChain(); err != nil {
			return fmt.Errorf("hyperprov: %s: %w", p.Name(), err)
		}
	}
	return nil
}

// gwPeers exposes the network peers for ledger-level queries (CheckTxn and
// audits operate below the chaincode layer, as in the paper's tooling).
func (c *Client) gwPeers() []peerLedger {
	peers := c.gw.Network().Peers()
	out := make([]peerLedger, len(peers))
	for i, p := range peers {
		out[i] = p
	}
	return out
}

// peerLedger is the slice of peer behaviour the client needs.
type peerLedger interface {
	Name() string
	Ledger() blockstore.BlockStore
}
