package core

import (
	"encoding/json"
	"fmt"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
)

// This file exposes the extended query operators: paginated listing,
// creator and metadata search, and direct-children lookup.

// ListPage re-exports one page of a listing.
type ListPage = provenance.ListPage

// List returns up to limit records whose keys start with prefix, resuming
// after the `after` bookmark (empty for the first page). The returned
// page's Next field is the bookmark for the following page.
func (c *Client) List(prefix, after string, limit int) (*ListPage, error) {
	in := map[string]any{"prefix": prefix, "after": after, "limit": limit}
	raw, err := json.Marshal(in)
	if err != nil {
		return nil, fmt.Errorf("hyperprov: marshal list args: %w", err)
	}
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnList, raw)
	if err != nil {
		return nil, err
	}
	var page ListPage
	if err := json.Unmarshal(payload, &page); err != nil {
		return nil, fmt.Errorf("hyperprov: decode list page: %w", err)
	}
	return &page, nil
}

// ListAll walks every page of a prefix listing and returns all records.
func (c *Client) ListAll(prefix string) ([]Record, error) {
	var out []Record
	after := ""
	for {
		page, err := c.List(prefix, after, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Records...)
		if page.Next == "" {
			return out, nil
		}
		after = page.Next
	}
}

// GetByCreator returns every live record posted by the given creator
// subject (as recorded in Record.Creator).
func (c *Client) GetByCreator(creator string) ([]Record, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnGetByCreator, []byte(creator))
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(payload, &recs); err != nil {
		return nil, fmt.Errorf("hyperprov: decode records: %w", err)
	}
	return recs, nil
}

// QueryMeta returns every live record whose metadata field key equals
// value.
func (c *Client) QueryMeta(key, value string) ([]Record, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnQueryMeta,
		[]byte(key), []byte(value))
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(payload, &recs); err != nil {
		return nil, fmt.Errorf("hyperprov: decode records: %w", err)
	}
	return recs, nil
}

// GetChildren returns the records directly derived from key (one lineage
// edge, not the transitive closure).
func (c *Client) GetChildren(key string) ([]Record, error) {
	return c.recordList(provenance.FnGetChildren, key)
}

// ChaincodeVersion reports the deployed provenance contract version.
func (c *Client) ChaincodeVersion() (string, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnVersion)
	if err != nil {
		return "", err
	}
	return string(payload), nil
}
