package core

import (
	"errors"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// newMultiChannelNet builds a two-channel network with the provenance
// chaincode deployed on both channels.
func newMultiChannelNet(t *testing.T) *fabric.Network {
	t.Helper()
	cfg := fabric.DesktopConfig()
	cfg.Clock = device.NopClock{}
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 1, BatchTimeout: 50 * time.Millisecond, PreferredMaxBytes: 1 << 30,
	}
	cfg.Channels = []fabric.ChannelConfig{{ID: "tenant-a"}, {ID: "tenant-b"}}
	n, err := fabric.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	for _, ch := range n.Channels() {
		if err := n.DeployChaincodeOn(ch, provenance.ChaincodeName,
			func() shim.Chaincode { return provenance.New() }); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// WithChannel must rebind the client to the sibling channel: records posted
// through it land on that channel only.
func TestWithChannelRebindsClient(t *testing.T) {
	n := newMultiChannelNet(t)
	gw, err := n.NewGateway("opts-client")
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(gw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(gw, WithChannel("tenant-b"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Channel() != "tenant-a" || b.Channel() != "tenant-b" {
		t.Fatalf("channels = %q, %q; want tenant-a, tenant-b", a.Channel(), b.Channel())
	}
	if _, err := b.Post("b-only", "sha256:b", PostOptions{}); err != nil {
		t.Fatalf("post on tenant-b: %v", err)
	}
	if rec, err := b.Get("b-only"); err != nil || rec.Checksum != "sha256:b" {
		t.Fatalf("get on tenant-b: rec=%v err=%v", rec, err)
	}
	if _, err := a.Get("b-only"); err == nil {
		t.Fatal("tenant-b record visible through tenant-a client")
	}
}

// An unknown channel must fail at construction, not at first use.
func TestWithChannelUnknown(t *testing.T) {
	n := newMultiChannelNet(t)
	gw, err := n.NewGateway("opts-client2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(gw, WithChannel("tenant-z")); err == nil {
		t.Fatal("New with unknown channel succeeded")
	}
}

// WithTimeout must make commit waits fail fast; the deprecated NewClient
// wrapper must behave exactly like New(gw, WithStore(s)).
func TestWithTimeoutAndDeprecatedWrapper(t *testing.T) {
	n := newMultiChannelNet(t)
	gw, err := n.NewGateway("opts-client3")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(gw, WithChannel("tenant-b"), WithTimeout(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Post("too-slow", "sha256:x", PostOptions{}); !errors.Is(err, fabric.ErrCommitTimeout) {
		t.Fatalf("post with 1ns timeout: err=%v, want commit timeout", err)
	}

	gw2, err := n.NewGateway("opts-client4")
	if err != nil {
		t.Fatal(err)
	}
	store := offchain.NewMemStore()
	legacy, err := NewClient(Config{Gateway: gw2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Channel() != "tenant-a" {
		t.Fatalf("legacy client channel = %q, want default tenant-a", legacy.Channel())
	}
	if _, err := legacy.StoreData("legacy-key", []byte("payload"), PostOptions{}); err != nil {
		t.Fatalf("legacy StoreData: %v", err)
	}
	if data, _, err := legacy.GetData("legacy-key"); err != nil || string(data) != "payload" {
		t.Fatalf("legacy GetData: data=%q err=%v", data, err)
	}
}
