package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/fabric"
)

func TestListPagination(t *testing.T) {
	c, _ := newClient(t)
	for i := 0; i < 7; i++ {
		if _, err := c.Post(fmt.Sprintf("sensor/%02d", i), "cs", PostOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Post("other/x", "cs", PostOptions{}); err != nil {
		t.Fatal(err)
	}

	page, err := c.List("sensor/", "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Records) != 3 || page.Next == "" {
		t.Fatalf("page = %d records, next %q", len(page.Records), page.Next)
	}
	all, err := c.ListAll("sensor/")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Errorf("ListAll = %d records, want 7", len(all))
	}
	for i, rec := range all {
		if want := fmt.Sprintf("sensor/%02d", i); rec.Key != want {
			t.Errorf("record %d = %q, want %q (key order)", i, rec.Key, want)
		}
	}
}

func TestGetByCreatorAcrossClients(t *testing.T) {
	c, _ := newClient(t)
	other, err := New(mustGateway(t, c, "other-client"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Post("mine", "c1", PostOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Post("theirs", "c2", PostOptions{}); err != nil {
		t.Fatal(err)
	}

	mine, err := c.GetByCreator(c.Subject())
	if err != nil {
		t.Fatal(err)
	}
	if len(mine) != 1 || mine[0].Key != "mine" {
		t.Errorf("GetByCreator(self) = %+v", mine)
	}
	theirs, err := c.GetByCreator(other.Subject())
	if err != nil {
		t.Fatal(err)
	}
	if len(theirs) != 1 || theirs[0].Key != "theirs" {
		t.Errorf("GetByCreator(other) = %+v", theirs)
	}
}

// mustGateway enrolls a fresh client identity on the same network.
func mustGateway(t *testing.T, c *Client, name string) *fabric.Gateway {
	t.Helper()
	gw, err := c.gw.Network().NewGateway(name)
	if err != nil {
		t.Fatal(err)
	}
	return gw
}

func TestQueryMetaEndToEnd(t *testing.T) {
	c, _ := newClient(t)
	if _, err := c.Post("a", "c1", PostOptions{Meta: map[string]string{"stage": "raw"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Post("b", "c2", PostOptions{Meta: map[string]string{"stage": "final"}}); err != nil {
		t.Fatal(err)
	}
	recs, err := c.QueryMeta("stage", "raw")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "a" {
		t.Errorf("QueryMeta = %+v", recs)
	}
}

func TestGetChildren(t *testing.T) {
	c, _ := newClient(t)
	if _, err := c.Post("p", "c0", PostOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Post("child", "c1", PostOptions{Parents: []string{"p"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Post("grandchild", "c2", PostOptions{Parents: []string{"child"}}); err != nil {
		t.Fatal(err)
	}
	kids, err := c.GetChildren("p")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 1 || kids[0].Key != "child" {
		t.Errorf("GetChildren = %+v", kids)
	}
}

func TestChaincodeVersion(t *testing.T) {
	c, _ := newClient(t)
	v, err := c.ChaincodeVersion()
	if err != nil {
		t.Fatal(err)
	}
	if v == "" {
		t.Error("empty version")
	}
}

func TestOwnershipAcrossClients(t *testing.T) {
	c, _ := newClient(t)
	other, err := New(mustGateway(t, c, "intruder"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Post("protected", "c1", PostOptions{}); err != nil {
		t.Fatal(err)
	}
	// A different identity may not overwrite or delete the record.
	if _, err := other.Post("protected", "c2", PostOptions{}); err == nil {
		t.Error("non-owner update succeeded")
	}
	if _, err := other.Delete("protected"); err == nil {
		t.Error("non-owner delete succeeded")
	}
	// The owner still can.
	if _, err := c.Post("protected", "c3", PostOptions{}); err != nil {
		t.Errorf("owner update failed: %v", err)
	}
}

func TestWatchStreamsCommits(t *testing.T) {
	c, _ := newClient(t)
	watch := c.Watch(16)
	keys := []string{"w1", "w2", "w3"}
	for _, k := range keys {
		if _, err := c.Post(k, "cs", PostOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]bool{}
	timeout := time.After(5 * time.Second)
	for len(got) < len(keys) {
		select {
		case ev, ok := <-watch:
			if !ok {
				t.Fatal("watch closed early")
			}
			if ev.TxID == "" || ev.Key == "" {
				t.Errorf("incomplete event %+v", ev)
			}
			got[ev.Key] = true
		case <-timeout:
			t.Fatalf("saw %d/%d events", len(got), len(keys))
		}
	}
	for _, k := range keys {
		if !got[k] {
			t.Errorf("missing event for %q", k)
		}
	}
}
