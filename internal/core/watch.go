package core

// RecordEvent notifies a watcher that a provenance record committed.
type RecordEvent struct {
	// Key is the provenance record key that was set or deleted.
	Key string
	// TxID is the committing transaction.
	TxID string
	// BlockNum is the committing block.
	BlockNum uint64
}

// Watch streams committed provenance-record writes ("provenance.set"
// chaincode events) observed on the client's commit peer, starting from
// now. The channel closes when the network stops. This mirrors the event
// subscription the paper's NodeJS library exposes for reacting to new data
// items at the edge.
func (c *Client) Watch(buffer int) <-chan RecordEvent {
	events := c.gw.Network().Peers()[0].SubscribeEvents(buffer)
	out := make(chan RecordEvent, buffer)
	go func() {
		defer close(out)
		for ev := range events {
			if ev.Name != "provenance.set" {
				continue
			}
			out <- RecordEvent{Key: string(ev.Payload), TxID: ev.TxID, BlockNum: ev.BlockNum}
		}
	}()
	return out
}
