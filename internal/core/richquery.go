package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
)

// This file exposes the rich-query operators: Mango selector queries and
// the indexed provenance lookups (by owner, by type, by time window) the
// paper runs against CouchDB.

// QueryPage re-exports one page of a rich query result.
type QueryPage = provenance.QueryPage

// RichQuery runs a raw Mango query document against the provenance store:
//
//	{"selector": {"owner": "x509::CN=alice,...", "ts": {"$gt": 0}},
//	 "sort": [{"ts": "desc"}], "limit": 25}
//
// A bare selector object is also accepted. Sort, limit, and bookmark ride
// inside the query document; the returned page carries the next bookmark.
func (c *Client) RichQuery(query string) (*QueryPage, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnRichQuery, []byte(query))
	if err != nil {
		return nil, err
	}
	var page QueryPage
	if err := json.Unmarshal(payload, &page); err != nil {
		return nil, fmt.Errorf("hyperprov: decode query page: %w", err)
	}
	return &page, nil
}

// RichQueryPage runs a Mango query with explicit pagination: pageSize
// results per page, resuming from bookmark ("" for the first page).
func (c *Client) RichQueryPage(query string, pageSize int, bookmark string) (*QueryPage, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, provenance.FnRichQuery,
		[]byte(query), []byte(strconv.Itoa(pageSize)), []byte(bookmark))
	if err != nil {
		return nil, err
	}
	var page QueryPage
	if err := json.Unmarshal(payload, &page); err != nil {
		return nil, fmt.Errorf("hyperprov: decode query page: %w", err)
	}
	return &page, nil
}

// GetByOwner returns every live record owned by the given wire identity
// subject, served from the by-owner secondary index.
func (c *Client) GetByOwner(owner string) ([]Record, error) {
	return c.recordsQuery(provenance.FnGetByOwner, []byte(owner))
}

// GetMine returns every live record owned by this client's identity.
func (c *Client) GetMine() ([]Record, error) {
	return c.GetByOwner(c.Subject())
}

// GetByType returns every live record whose meta.type equals t, served
// from the by-type secondary index.
func (c *Client) GetByType(t string) ([]Record, error) {
	return c.recordsQuery(provenance.FnGetByType, []byte(t))
}

// GetByTimeRange returns the records whose transaction timestamp lies in
// [from, to), oldest first, served from the by-time secondary index.
// RFC3339Nano keeps sub-second bounds exact (records carry millisecond
// timestamps; plain RFC3339 would shift the window by up to a second).
func (c *Client) GetByTimeRange(from, to time.Time) ([]Record, error) {
	return c.recordsQuery(provenance.FnGetByTimeRange,
		[]byte(from.UTC().Format(time.RFC3339Nano)), []byte(to.UTC().Format(time.RFC3339Nano)))
}

// recordsQuery evaluates fn and decodes a JSON record array.
func (c *Client) recordsQuery(fn string, args ...[]byte) ([]Record, error) {
	payload, err := c.gw.Evaluate(provenance.ChaincodeName, fn, args...)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(payload, &recs); err != nil {
		return nil, fmt.Errorf("hyperprov: decode records: %w", err)
	}
	return recs, nil
}
