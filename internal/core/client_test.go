package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/device"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

// newClient spins up a fast in-process network with a memory off-chain
// store and returns a ready HyperProv client.
func newClient(t *testing.T) (*Client, *offchain.MemStore) {
	t.Helper()
	cfg := fabric.DesktopConfig()
	cfg.Clock = device.NopClock{}
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 1, BatchTimeout: 50 * time.Millisecond, PreferredMaxBytes: 1 << 30,
	}
	n, err := fabric.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	if err := n.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		t.Fatal(err)
	}
	gw, err := n.NewGateway("core-test")
	if err != nil {
		t.Fatal(err)
	}
	store := offchain.NewMemStore()
	c, err := New(gw, WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	return c, store
}

func TestPostAndGet(t *testing.T) {
	c, _ := newClient(t)
	receipt, err := c.Post("item1", "sha256:abc", PostOptions{Meta: map[string]string{"unit": "C"}})
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if receipt.TxID == "" {
		t.Error("empty txid")
	}
	rec, err := c.Get("item1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rec.Checksum != "sha256:abc" || rec.Meta["unit"] != "C" {
		t.Errorf("record = %+v", rec)
	}
	if rec.Creator != c.Subject() {
		t.Errorf("creator = %q, want %q", rec.Creator, c.Subject())
	}
}

func TestStoreDataGetDataRoundTrip(t *testing.T) {
	c, _ := newClient(t)
	payload := bytes.Repeat([]byte("sensor-frame-"), 1000)
	receipt, err := c.StoreData("frame1", payload, PostOptions{})
	if err != nil {
		t.Fatalf("StoreData: %v", err)
	}
	if receipt.Latency <= 0 {
		t.Error("no latency recorded")
	}
	got, rec, err := c.GetData("frame1")
	if err != nil {
		t.Fatalf("GetData: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload mismatch")
	}
	if rec.Checksum != offchain.Checksum(payload) {
		t.Errorf("checksum = %q", rec.Checksum)
	}
	if rec.Location == "" {
		t.Error("no off-chain location recorded")
	}
}

func TestTamperDetectionEndToEnd(t *testing.T) {
	c, store := newClient(t)
	if _, err := c.StoreData("critical", []byte("original measurement"), PostOptions{}); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Get("critical")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Corrupt(rec.Location); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.GetData("critical")
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("GetData of tampered payload = %v, want ErrTampered", err)
	}
}

func TestKeyHistory(t *testing.T) {
	c, _ := newClient(t)
	for i := 0; i < 3; i++ {
		if _, err := c.Post("evolving", fmt.Sprintf("cs-v%d", i), PostOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := c.GetKeyHistory("evolving")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history = %d versions, want 3", len(hist))
	}
	if hist[0].Record.Checksum != "cs-v0" || hist[2].Record.Checksum != "cs-v2" {
		t.Errorf("history order: %+v", hist)
	}
}

func TestLineageOperators(t *testing.T) {
	c, _ := newClient(t)
	mustPost := func(key string, parents ...string) {
		t.Helper()
		if _, err := c.Post(key, "cs-"+key, PostOptions{Parents: parents}); err != nil {
			t.Fatalf("Post %s: %v", key, err)
		}
	}
	mustPost("raw")
	mustPost("clean", "raw")
	mustPost("features", "clean")
	mustPost("model", "features")

	lineage, err := c.GetLineage("model")
	if err != nil {
		t.Fatal(err)
	}
	if len(lineage) != 4 {
		t.Errorf("lineage = %d, want 4", len(lineage))
	}
	desc, err := c.GetDescendants("raw")
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 3 {
		t.Errorf("descendants = %d, want 3", len(desc))
	}
}

func TestGetByChecksum(t *testing.T) {
	c, _ := newClient(t)
	payload := []byte("unique payload")
	if _, err := c.StoreData("item", payload, PostOptions{}); err != nil {
		t.Fatal(err)
	}
	rec, err := c.GetByChecksum(offchain.Checksum(payload))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Key != "item" {
		t.Errorf("resolved key = %q", rec.Key)
	}
}

func TestCheckTxn(t *testing.T) {
	c, _ := newClient(t)
	receipt, err := c.Post("item", "cs", PostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	status, err := c.CheckTxn(receipt.TxID)
	if err != nil {
		t.Fatalf("CheckTxn: %v", err)
	}
	if !status.Valid || status.Code != "VALID" {
		t.Errorf("status = %+v", status)
	}
	if _, err := c.CheckTxn("no-such-tx"); !errors.Is(err, ErrTxNotFound) {
		t.Errorf("missing tx = %v, want ErrTxNotFound", err)
	}
}

func TestDeleteAndStats(t *testing.T) {
	c, _ := newClient(t)
	if _, err := c.Post("a", "c1", PostOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Post("b", "c2", PostOptions{}); err != nil {
		t.Fatal(err)
	}
	s, err := c.GetStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != 2 {
		t.Errorf("records = %d, want 2", s.Records)
	}
	if _, err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	s, err = c.GetStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != 1 {
		t.Errorf("records after delete = %d, want 1", s.Records)
	}
	// History outlives the record.
	hist, err := c.GetKeyHistory("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Errorf("history after delete = %d entries, want 2", len(hist))
	}
}

func TestVerifyLedger(t *testing.T) {
	c, _ := newClient(t)
	if _, err := c.Post("x", "cs", PostOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyLedger(); err != nil {
		t.Errorf("VerifyLedger: %v", err)
	}
}

func TestGetDataWithoutLocation(t *testing.T) {
	c, _ := newClient(t)
	if _, err := c.Post("meta-only", "cs", PostOptions{}); err != nil {
		t.Fatal(err)
	}
	_, _, err := c.GetData("meta-only")
	if !errors.Is(err, ErrNoLocation) {
		t.Errorf("err = %v, want ErrNoLocation", err)
	}
}

func TestClientWithoutStore(t *testing.T) {
	c, _ := newClient(t)
	noStore, err := New(cGateway(c))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noStore.StoreData("k", []byte("x"), PostOptions{}); err == nil {
		t.Error("StoreData without store succeeded")
	}
	if _, _, err := noStore.GetData("k"); err == nil {
		t.Error("GetData without store succeeded")
	}
}

// cGateway extracts the gateway for building a second client in tests.
func cGateway(c *Client) *fabric.Gateway { return c.gw }

func TestNewRequiresGateway(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New without gateway succeeded")
	}
}
