// Command hyperprov-bench regenerates the paper's evaluation: one
// experiment per figure (Figs 1–3) plus the ablations documented in
// DESIGN.md. Results print as text tables containing the rows each figure
// plots; all durations and rates are in modeled hardware time.
//
// Usage:
//
//	hyperprov-bench -experiment fig1|fig2|fig3|batch|onchain|raft|query|commit|mvcc-sweep|recovery|state|channels|codec|all [-quick] [-out file] [-sweep-out file] [-recovery-out file] [-state-out file] [-channels-out file] [-codec-out file]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hyperprov/hyperprov/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: fig1, fig2, fig3, batch, onchain, raft, query, commit, mvcc-sweep, recovery, state, channels, codec, or all")
	quick := flag.Bool("quick", false, "use reduced sweep sizes and windows")
	out := flag.String("out", "BENCH_commit.json",
		"path the commit experiment writes its JSON result to (empty disables)")
	sweepOut := flag.String("sweep-out", "BENCH_mvcc_sweep.json",
		"path the mvcc-sweep experiment writes its JSON result to (empty disables)")
	recoveryOut := flag.String("recovery-out", "BENCH_recovery.json",
		"path the recovery experiment writes its JSON result to (empty disables)")
	stateOut := flag.String("state-out", "BENCH_state.json",
		"path the state experiment writes its JSON result to (empty disables)")
	channelsOut := flag.String("channels-out", "BENCH_channels.json",
		"path the channels experiment writes its JSON result to (empty disables)")
	codecOut := flag.String("codec-out", "BENCH_codec.json",
		"path the codec experiment writes its JSON result to (empty disables)")
	overheadGuard := flag.Float64("overhead-guard", 0,
		"in the commit experiment: also measure observability (metrics+tracing) overhead and fail when it exceeds this percent (0 disables)")
	flag.Parse()
	if err := run(*experiment, *quick, *out, *sweepOut, *recoveryOut, *stateOut, *channelsOut, *codecOut, *overheadGuard); err != nil {
		fmt.Fprintln(os.Stderr, "hyperprov-bench:", err)
		os.Exit(1)
	}
}

func run(experiment string, quick bool, out, sweepOut, recoveryOut, stateOut, channelsOut, codecOut string, overheadGuard float64) error {
	sweep := bench.DefaultSweep()
	energyCfg := bench.DefaultEnergy()
	if quick {
		sweep = bench.QuickSweep()
		energyCfg = bench.QuickEnergy()
	}

	runOne := func(name string) error {
		switch name {
		case "fig1":
			res, err := bench.RunFig1(sweep)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
		case "fig2":
			res, err := bench.RunFig2(sweep)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
		case "fig3":
			res, err := bench.RunFig3(energyCfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
		case "batch":
			cfg := bench.DefaultBatchAblation()
			if quick {
				cfg.BatchSizes = []int{1, 20}
				cfg.WallPerPoint = sweep.WallPerPoint
			}
			res, err := bench.RunBatchAblation(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
		case "onchain":
			cfg := bench.DefaultOnchainAblation()
			if quick {
				cfg.Sizes = []int{1 << 10, 128 << 10}
				cfg.WallPerPoint = sweep.WallPerPoint
			}
			off, on, err := bench.RunOnchainAblation(cfg)
			if err != nil {
				return err
			}
			fmt.Println(off.Format())
			fmt.Println(on.Format())
		case "query":
			cfg := bench.DefaultQueryBench()
			if quick {
				cfg = bench.QuickQueryBench()
			}
			res, err := bench.RunQueryBench(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
		case "raft":
			cfg := bench.DefaultRaftAblation()
			if quick {
				cfg.WallPerPhase = sweep.WallPerPoint
			}
			res, err := bench.RunRaftAblation(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
		case "commit":
			cfg := bench.DefaultCommitBench()
			if quick {
				cfg = bench.QuickCommitBench()
			}
			cfg.Overhead = overheadGuard > 0
			res, err := bench.RunCommitBench(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
			if out != "" {
				if err := res.WriteJSON(out); err != nil {
					return err
				}
				fmt.Println("wrote", out)
			}
			if o := res.Overhead; o != nil && o.OverheadPct > overheadGuard {
				return fmt.Errorf("observability overhead %.2f%% exceeds guard %.2f%%",
					o.OverheadPct, overheadGuard)
			}
		case "mvcc-sweep":
			cfg := bench.DefaultMVCCSweep()
			if quick {
				cfg = bench.QuickMVCCSweep()
			}
			res, err := bench.RunMVCCSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
			if sweepOut != "" {
				if err := res.WriteJSON(sweepOut); err != nil {
					return err
				}
				fmt.Println("wrote", sweepOut)
			}
		case "recovery":
			cfg := bench.DefaultRecoveryBench()
			if quick {
				cfg = bench.QuickRecoveryBench()
			}
			res, err := bench.RunRecoveryBench(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
			if recoveryOut != "" {
				if err := res.WriteJSON(recoveryOut); err != nil {
					return err
				}
				fmt.Println("wrote", recoveryOut)
			}
		case "state":
			cfg := bench.DefaultStateBench()
			if quick {
				cfg = bench.QuickStateBench()
			}
			res, err := bench.RunStateBench(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
			if stateOut != "" {
				if err := res.WriteJSON(stateOut); err != nil {
					return err
				}
				fmt.Println("wrote", stateOut)
			}
		case "channels":
			cfg := bench.DefaultChannelBench()
			if quick {
				cfg = bench.QuickChannelBench()
			}
			res, err := bench.RunChannelBench(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
			if channelsOut != "" {
				if err := res.WriteJSON(channelsOut); err != nil {
					return err
				}
				fmt.Println("wrote", channelsOut)
			}
		case "codec":
			cfg := bench.DefaultCodecBench()
			if quick {
				cfg = bench.QuickCodecBench()
			}
			res, err := bench.RunCodecBench(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
			if codecOut != "" {
				if err := res.WriteJSON(codecOut); err != nil {
					return err
				}
				fmt.Println("wrote", codecOut)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if experiment == "all" {
		for _, name := range []string{"fig1", "fig2", "fig3", "batch", "onchain", "raft", "query", "commit", "mvcc-sweep", "recovery", "state", "channels", "codec"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return runOne(experiment)
}
