// Command hyperprov-net demonstrates the multi-process deployment shape of
// the paper: four machines on one switch, talking over real TCP. It has
// four modes:
//
//	-serve        run only the off-chain storage server (the SSHFS node)
//	-peer-serve   run the blockchain network with every peer exposed on a
//	              TCP listener, submit a workload, and keep serving so
//	              other processes can join
//	-join ADDRS   run a gossip-only peer in its own process: fetch trust
//	              anchors from a serving peer, catch up over TCP
//	              anti-entropy, and verify height + state fingerprint
//	(none)        single-process demo: server + network + client over TCP
//
// Every peer-to-peer connection carries framed JSON over TCP and can be
// link-shaped (-peer-latency / -peer-mbps), so blocks disseminate with the
// same cost structure as the paper's LAN.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hyperprov/hyperprov/internal/admin"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/core"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/gossip"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/metrics"
	"github.com/hyperprov/hyperprov/internal/network"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/peer"
	"github.com/hyperprov/hyperprov/internal/shim"
	"github.com/hyperprov/hyperprov/internal/trace"
	"github.com/hyperprov/hyperprov/internal/transport"
)

type options struct {
	serve     bool
	peerServe bool
	join      string

	addr    string
	connect string
	latency time.Duration
	mbps    float64

	peerListen  string
	peerLatency time.Duration
	peerMbps    float64
	listen      string

	txs          int
	name         string
	expectHeight uint64
	expectFP     string
	timeout      time.Duration
	runFor       time.Duration
	admin        string

	channels string
	channel  string
}

func main() {
	var o options
	flag.BoolVar(&o.serve, "serve", false, "run only the off-chain storage server")
	flag.BoolVar(&o.peerServe, "peer-serve", false, "run the network with peers exposed on TCP listeners")
	flag.StringVar(&o.join, "join", "", "comma-separated peer transport addresses to join via gossip")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:9733", "storage server address")
	flag.StringVar(&o.connect, "connect", "", "use an existing storage server instead of starting one")
	flag.DurationVar(&o.latency, "latency", 2*time.Millisecond, "simulated one-way link latency to storage")
	flag.Float64Var(&o.mbps, "mbps", 360, "simulated storage link bandwidth (SSHFS effective, in Mbit/s)")
	flag.StringVar(&o.peerListen, "peer-listen", "", "comma-separated listen addresses for exposed peers (default ephemeral)")
	flag.DurationVar(&o.peerLatency, "peer-latency", 0, "simulated one-way latency per peer transport connection")
	flag.Float64Var(&o.peerMbps, "peer-mbps", 0, "simulated bandwidth per peer transport connection (Mbit/s)")
	flag.StringVar(&o.listen, "listen", "", "in -join mode: also serve this peer's transport on the given address")
	flag.IntVar(&o.txs, "txs", 4, "in -peer-serve mode: number of StoreData transactions to submit")
	flag.StringVar(&o.name, "name", "edge-peer", "in -join mode: the joining peer's name")
	flag.Uint64Var(&o.expectHeight, "expect-height", 0, "in -join mode: block height to wait for")
	flag.StringVar(&o.expectFP, "expect-fingerprint", "", "in -join mode: state fingerprint that must match after catch-up")
	flag.DurationVar(&o.timeout, "timeout", 60*time.Second, "in -join mode: catch-up deadline")
	flag.DurationVar(&o.runFor, "run-for", 0, "in -peer-serve/-join mode: keep serving for this duration (default: until SIGINT / immediate exit)")
	flag.StringVar(&o.admin, "admin", "", "serve the admin endpoint (/metrics, /healthz, /tracez, pprof) on this address, e.g. 127.0.0.1:0")
	flag.StringVar(&o.channels, "channels", "", "in -peer-serve mode: comma-separated channel IDs to serve (default: the single legacy channel)")
	flag.StringVar(&o.channel, "channel", "", "in -join mode: channel to join (default: the serving host's first channel)")
	flag.Parse()

	var err error
	switch {
	case o.serve:
		err = runStorageServer(o)
	case o.peerServe:
		err = runPeerServe(o)
	case o.join != "":
		err = runJoin(o)
	default:
		err = runSingleProcess(o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperprov-net:", err)
		os.Exit(1)
	}
}

// startAdmin exposes one peer's observability surface when -admin is set:
// its pipeline metrics (unprefixed), the process's network-level registry
// (prefixed net_), the trace recorder, and a health summary. On a
// multi-channel host chPeers carries the host's per-channel peer instances;
// their pipeline metrics are then served with a channel="<id>" label (and
// the unlabeled default-channel registry is dropped to avoid duplicate
// metric families), and /healthz breaks height and commit age down per
// channel. Returns nil without error when the flag is unset.
func (o options) startAdmin(p *peer.Peer, chPeers []*peer.Peer, netReg *metrics.Registry,
	tracer *trace.Recorder, gossipCount func() int, lastErr func() string) (*admin.Server, error) {
	if o.admin == "" {
		return nil, nil
	}
	regs := map[string]*metrics.Registry{}
	var chRegs map[string]map[string]*metrics.Registry
	if len(chPeers) > 1 {
		chRegs = make(map[string]map[string]*metrics.Registry, len(chPeers))
		for _, cp := range chPeers {
			chRegs[cp.ChannelID()] = map[string]*metrics.Registry{"": cp.Metrics()}
		}
	} else {
		regs[""] = p.Metrics()
	}
	if netReg != nil {
		regs["net_"] = netReg
	}
	commitAge := func(cp *peer.Peer) int64 {
		if t := cp.LastCommitTime(); !t.IsZero() {
			return time.Since(t).Milliseconds()
		}
		return -1
	}
	srv, err := admin.New(o.admin, admin.Config{
		Registries:        regs,
		ChannelRegistries: chRegs,
		Tracer:            tracer,
		HealthFunc: func() admin.Health {
			h := admin.Health{Peer: p.Name(), Height: p.Height(), LastCommitAgeMs: commitAge(p)}
			for _, cp := range chPeers {
				h.Channels = append(h.Channels, admin.ChannelHealth{
					Channel: cp.ChannelID(), Height: cp.Height(), LastCommitAgeMs: commitAge(cp),
				})
			}
			if gossipCount != nil {
				h.GossipPeers = gossipCount()
			}
			if lastErr != nil {
				h.TransportLastError = lastErr()
			}
			return h
		},
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("ADMIN %s\n", srv.URL())
	return srv, nil
}

func (o options) storageShape() network.LinkShape {
	return network.LinkShape{Latency: o.latency, Mbps: o.mbps}
}

func (o options) peerShape() network.LinkShape {
	return network.LinkShape{Latency: o.peerLatency, Mbps: o.peerMbps}
}

func runStorageServer(o options) error {
	srv, err := offchain.NewServer(o.addr, offchain.NewMemStore(), o.storageShape())
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("off-chain storage server listening on %s (latency=%v, %gMbps)\n",
		srv.Addr(), o.latency, o.mbps)
	waitForSignal(0)
	return nil
}

// runPeerServe starts the full network with every peer exposed on a TCP
// listener, submits a workload, prints the convergence target (height and
// state fingerprint), and keeps serving so -join processes can catch up.
func runPeerServe(o options) error {
	srv, err := offchain.NewServer(o.addr, offchain.NewMemStore(), o.storageShape())
	if err != nil {
		return err
	}
	defer srv.Close()
	store, err := offchain.NewRemoteStore(srv.Addr(), o.storageShape())
	if err != nil {
		return err
	}
	defer store.Close()

	cfg := fabric.DesktopConfig()
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 5, BatchTimeout: 200 * time.Millisecond, PreferredMaxBytes: 8 << 20,
	}
	cfg.Gossip = true
	cfg.PeerListen = true
	cfg.PeerLink = o.peerShape()
	if o.peerListen != "" {
		cfg.PeerListenAddrs = strings.Split(o.peerListen, ",")
	}
	if o.channels != "" {
		for _, ch := range strings.Split(o.channels, ",") {
			cfg.Channels = append(cfg.Channels, fabric.ChannelConfig{ID: strings.TrimSpace(ch)})
		}
	}
	n, err := fabric.NewNetwork(cfg)
	if err != nil {
		return err
	}
	defer n.Stop()
	for _, ch := range n.Channels() {
		if err := n.DeployChaincodeOn(ch, provenance.ChaincodeName,
			func() shim.Chaincode { return provenance.New() }); err != nil {
			return err
		}
	}
	// Host 0's per-channel peer instances feed the admin endpoint's
	// channel-labeled metrics and per-channel health.
	var chPeers []*peer.Peer
	if len(n.Channels()) > 1 {
		for _, ch := range n.Channels() {
			peers, err := n.ChannelPeers(ch)
			if err != nil {
				return err
			}
			chPeers = append(chPeers, peers[0])
		}
	}
	adminSrv, err := o.startAdmin(n.Peers()[0], chPeers, n.Metrics(), n.Tracer(),
		n.Gossip().MemberCount,
		func() string {
			for _, c := range n.Remotes() {
				if e := c.LastError(); e != "" {
					return e
				}
			}
			return ""
		})
	if err != nil {
		return err
	}
	if adminSrv != nil {
		defer adminSrv.Close()
	}

	payload := make([]byte, 16<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Submit the same keys on every channel: isolation means they land on
	// disjoint ledgers with independent fingerprints.
	for _, ch := range n.Channels() {
		gw, err := n.Gateway(ch)
		if err != nil {
			return err
		}
		client, err := core.New(gw, core.WithStore(store))
		if err != nil {
			return err
		}
		for i := 0; i < o.txs; i++ {
			key := fmt.Sprintf("net-item-%d", i)
			if _, err := client.StoreData(key, payload, core.PostOptions{
				Meta: map[string]string{"transport": "tcp", "channel": ch},
			}); err != nil {
				return fmt.Errorf("store %s on %s: %w", key, ch, err)
			}
		}
	}
	for _, ch := range n.Channels() {
		peers, err := n.ChannelPeers(ch)
		if err != nil {
			return err
		}
		for _, p := range peers {
			p.Sync()
		}
	}
	p0 := n.Peers()[0]
	fmt.Printf("PEERS %s\n", strings.Join(n.PeerAddrs(), ","))
	fmt.Printf("PRIMARY height=%d fingerprint=%s\n", p0.Height(), p0.StateFingerprint())
	if chs := n.Channels(); len(chs) > 1 {
		for _, ch := range chs {
			peers, err := n.ChannelPeers(ch)
			if err != nil {
				return err
			}
			fmt.Printf("PRIMARY channel=%s height=%d fingerprint=%s\n",
				ch, peers[0].Height(), peers[0].StateFingerprint())
		}
	}
	fmt.Println("serving peer transport; Ctrl-C to exit")
	waitForSignal(o.runFor)
	return nil
}

// runJoin starts a gossip-only peer in this process: it learns the
// channel, endorsement orgs, and CA trust anchors from a serving peer's
// hello handshake (certificates only — no private keys cross the wire),
// then catches up over TCP anti-entropy until it reaches the expected
// height, and verifies its state fingerprint.
func runJoin(o options) error {
	// The joining process's own observability state, created before dialing
	// so handshakes and catch-up traffic are counted from the first byte.
	tracer := trace.NewRecorder()
	netReg := metrics.NewRegistry()

	addrs := strings.Split(o.join, ",")
	clients := make([]*transport.Client, 0, len(addrs))
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for _, a := range addrs {
		c, err := transport.Dial(strings.TrimSpace(a), transport.ClientConfig{
			Channel: o.channel,
			Shape:   o.peerShape(),
			Metrics: netReg,
			Tracer:  tracer,
		})
		if err != nil {
			return err
		}
		clients = append(clients, c)
	}
	info, err := clients[0].Hello()
	if err != nil {
		return err
	}
	if len(info.Channels) > 0 {
		fmt.Printf("joining channel %s (host serves %s)\n",
			info.ChannelID, strings.Join(info.Channels, ","))
	}

	// Build a verification-only MSP from the network's CA certificates.
	msp := identity.NewMSP()
	for _, pemBytes := range info.CACertsPEM {
		ca, err := identity.NewVerifyingCA(pemBytes)
		if err != nil {
			return fmt.Errorf("trust anchor: %w", err)
		}
		msp.AddCA(ca)
	}
	// The joining peer signs with a throwaway local identity: it never
	// endorses for the network, it only validates and commits.
	localCA, err := identity.NewCA("EdgeOrg-" + o.name)
	if err != nil {
		return err
	}
	signer, err := localCA.Enroll(o.name, identity.RolePeer)
	if err != nil {
		return err
	}
	host, err := peer.NewHost(peer.Config{Name: o.name, Signer: signer, MSP: msp, Channels: []string{info.ChannelID}, Tracer: tracer})
	if err != nil {
		return err
	}
	p := host.Channel(info.ChannelID)
	defer p.Stop()
	// Same derivation the serving network used, so both sides validate
	// endorsements against the identical policy.
	policy := fabric.PolicyFor(info.Orgs)
	if err := p.InstallChaincode(provenance.ChaincodeName, provenance.New(), policy); err != nil {
		return err
	}
	if o.listen != "" {
		srv, err := transport.NewServer(o.listen, p, transport.ServerConfig{
			ChannelID:  info.ChannelID,
			Orgs:       info.Orgs,
			CACertsPEM: info.CACertsPEM,
			Shape:      o.peerShape(),
			Metrics:    netReg,
			Tracer:     tracer,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving joined peer on %s\n", srv.Addr())
	}

	members := []gossip.Member{p}
	for _, c := range clients {
		m, err := c.Member()
		if err != nil {
			return err
		}
		members = append(members, m)
	}
	g := gossip.New(gossip.Config{Interval: 25 * time.Millisecond, Fanout: 1}, members...)
	defer g.Stop()
	g.SetMetrics(netReg)
	g.SetTracer(tracer)

	adminSrv, err := o.startAdmin(p, nil, netReg, tracer, g.MemberCount,
		func() string {
			for _, c := range clients {
				if e := c.LastError(); e != "" {
					return e
				}
			}
			return ""
		})
	if err != nil {
		return err
	}
	if adminSrv != nil {
		defer adminSrv.Close()
	}

	deadline := time.Now().Add(o.timeout)
	for p.Height() < o.expectHeight {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out at height %d, want %d", p.Height(), o.expectHeight)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := p.Ledger().VerifyChain(); err != nil {
		return fmt.Errorf("chain verification: %w", err)
	}
	fp := p.StateFingerprint()
	fmt.Printf("CONVERGED height=%d fingerprint=%s\n", p.Height(), fp)
	if o.expectFP != "" && fp != o.expectFP {
		return fmt.Errorf("state fingerprint mismatch: got %s, want %s", fp, o.expectFP)
	}
	if o.runFor > 0 {
		// Keep serving (gossip, transport, admin) so other processes can
		// inspect this peer after convergence.
		waitForSignal(o.runFor)
	}
	return nil
}

// runSingleProcess is the original demo: server + network + client in one
// process over real TCP.
func runSingleProcess(o options) error {
	storageAddr := o.connect
	if storageAddr == "" {
		srv, err := offchain.NewServer(o.addr, offchain.NewMemStore(), o.storageShape())
		if err != nil {
			return err
		}
		defer srv.Close()
		storageAddr = srv.Addr()
		fmt.Printf("started off-chain storage server on %s\n", storageAddr)
	}

	store, err := offchain.NewRemoteStore(storageAddr, o.storageShape())
	if err != nil {
		return err
	}
	defer store.Close()

	cfg := fabric.DesktopConfig()
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 5, BatchTimeout: 500 * time.Millisecond, PreferredMaxBytes: 8 << 20,
	}
	n, err := fabric.NewNetwork(cfg)
	if err != nil {
		return err
	}
	defer n.Stop()
	if err := n.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		return err
	}
	gw, err := n.NewGateway("net-demo")
	if err != nil {
		return err
	}
	client, err := core.New(gw, core.WithStore(store))
	if err != nil {
		return err
	}

	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	receipt, err := client.StoreData("tcp-item", payload, core.PostOptions{
		Meta: map[string]string{"transport": "tcp"},
	})
	if err != nil {
		return err
	}
	fmt.Printf("stored 256KiB via TCP off-chain store: tx=%s.. commit latency=%v\n",
		receipt.TxID[:12], receipt.Latency.Truncate(time.Millisecond))

	data, rec, err := client.GetData("tcp-item")
	if err != nil {
		return err
	}
	fmt.Printf("retrieved %d bytes, checksum verified (%s..), round trip %v\n",
		len(data), rec.Checksum[7:19], time.Since(start).Truncate(time.Millisecond))
	return nil
}

// waitForSignal blocks until SIGINT/SIGTERM, or for d when d > 0.
func waitForSignal(d time.Duration) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if d > 0 {
		select {
		case <-sig:
		case <-time.After(d):
		}
		return
	}
	<-sig
}
