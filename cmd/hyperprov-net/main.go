// Command hyperprov-net demonstrates the multi-process deployment shape of
// the paper: the off-chain storage component runs as a separate TCP object
// server (the SSHFS node), and the HyperProv network reaches it over a
// shaped link. Run with -serve to start only the storage server, or with
// no flags to run server + network + client in one process over real TCP.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/core"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/network"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

func main() {
	serve := flag.Bool("serve", false, "run only the off-chain storage server")
	addr := flag.String("addr", "127.0.0.1:9733", "storage server address")
	connect := flag.String("connect", "", "use an existing storage server instead of starting one")
	latency := flag.Duration("latency", 2*time.Millisecond, "simulated one-way link latency to storage")
	mbps := flag.Float64("mbps", 360, "simulated link bandwidth (SSHFS effective, in Mbit/s)")
	flag.Parse()
	if err := run(*serve, *addr, *connect, *latency, *mbps); err != nil {
		fmt.Fprintln(os.Stderr, "hyperprov-net:", err)
		os.Exit(1)
	}
}

func run(serve bool, addr, connect string, latency time.Duration, mbps float64) error {
	shape := network.LinkShape{Latency: latency, Mbps: mbps}

	if serve {
		srv, err := offchain.NewServer(addr, offchain.NewMemStore(), shape)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("off-chain storage server listening on %s (latency=%v, %gMbps)\n",
			srv.Addr(), latency, mbps)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		return nil
	}

	storageAddr := connect
	if storageAddr == "" {
		srv, err := offchain.NewServer(addr, offchain.NewMemStore(), shape)
		if err != nil {
			return err
		}
		defer srv.Close()
		storageAddr = srv.Addr()
		fmt.Printf("started off-chain storage server on %s\n", storageAddr)
	}

	store, err := offchain.NewRemoteStore(storageAddr, shape)
	if err != nil {
		return err
	}
	defer store.Close()

	cfg := fabric.DesktopConfig()
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 5, BatchTimeout: 500 * time.Millisecond, PreferredMaxBytes: 8 << 20,
	}
	n, err := fabric.NewNetwork(cfg)
	if err != nil {
		return err
	}
	defer n.Stop()
	if err := n.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		return err
	}
	gw, err := n.NewGateway("net-demo")
	if err != nil {
		return err
	}
	client, err := core.New(core.Config{Gateway: gw, Store: store})
	if err != nil {
		return err
	}

	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	receipt, err := client.StoreData("tcp-item", payload, core.PostOptions{
		Meta: map[string]string{"transport": "tcp"},
	})
	if err != nil {
		return err
	}
	fmt.Printf("stored 256KiB via TCP off-chain store: tx=%s.. commit latency=%v\n",
		receipt.TxID[:12], receipt.Latency.Truncate(time.Millisecond))

	data, rec, err := client.GetData("tcp-item")
	if err != nil {
		return err
	}
	fmt.Printf("retrieved %d bytes, checksum verified (%s..), round trip %v\n",
		len(data), rec.Checksum[7:19], time.Since(start).Truncate(time.Millisecond))
	return nil
}
