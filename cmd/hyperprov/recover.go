package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/hyperprov/hyperprov/internal/blockstore"
	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/endorser"
	"github.com/hyperprov/hyperprov/internal/identity"
	"github.com/hyperprov/hyperprov/internal/peer"
)

// recoverHarness drives one durable peer directly (endorse -> assemble
// block -> commit), standing in for the orderer so the demo controls
// exactly when the "power" goes out.
type recoverHarness struct {
	ca     *identity.CA
	msp    *identity.MSP
	client *identity.SigningIdentity
	seq    int
}

func newRecoverHarness() (*recoverHarness, error) {
	ca, err := identity.NewCA("Org1")
	if err != nil {
		return nil, err
	}
	client, err := ca.Enroll("operator", identity.RoleClient)
	if err != nil {
		return nil, err
	}
	return &recoverHarness{ca: ca, msp: identity.NewMSP(ca), client: client}, nil
}

// open opens (or reopens) the durable peer rooted at dir.
func (h *recoverHarness) open(dir string) (*peer.Peer, error) {
	h.seq++
	signer, err := h.ca.Enroll(fmt.Sprintf("peer0-life%d", h.seq), identity.RolePeer)
	if err != nil {
		return nil, err
	}
	host, err := peer.Open(peer.Config{
		Name:            "peer0.org1",
		Signer:          signer,
		MSP:             h.msp,
		Channels:        []string{"hyperprov"},
		Dir:             dir,
		CheckpointEvery: 4,
		SyncEachAppend:  true,
	})
	if err != nil {
		return nil, err
	}
	p := host.Channel("hyperprov")
	if err := p.InstallChaincode(provenance.ChaincodeName, provenance.New(),
		endorser.SignedBy("Org1MSP")); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// commitRecord endorses and commits one provenance record as its own block.
func (h *recoverHarness) commitRecord(p *peer.Peer, key, checksum string) error {
	args, err := json.Marshal(map[string]any{"key": key, "checksum": checksum})
	if err != nil {
		return err
	}
	creator := h.client.Serialize()
	txID, err := endorser.NewTxID(creator)
	if err != nil {
		return err
	}
	prop := &endorser.Proposal{
		TxID:      txID,
		ChannelID: "hyperprov",
		Chaincode: provenance.ChaincodeName,
		Function:  provenance.FnSet,
		Args:      [][]byte{args},
		Creator:   creator,
		Timestamp: time.Now().UTC(),
	}
	sig, err := h.client.Sign(prop.SignedBytes())
	if err != nil {
		return err
	}
	prop.Signature = sig
	resp, err := p.ProcessProposal(prop)
	if err != nil {
		return err
	}
	env := blockstore.Envelope{
		TxID:      prop.TxID,
		ChannelID: prop.ChannelID,
		Chaincode: prop.Chaincode,
		Function:  prop.Function,
		Args:      prop.Args,
		Creator:   prop.Creator,
		Timestamp: prop.Timestamp,
		RWSet:     resp.RWSet,
		Response:  resp.Payload,
		Events:    resp.Events,
		Endorsements: []blockstore.Endorsement{
			{Endorser: resp.Endorser, Signature: resp.Signature},
		},
	}
	envSig, err := h.client.Sign(env.SignedBytes())
	if err != nil {
		return err
	}
	env.Signature = envSig
	b, err := blockstore.NewBlock(p.Height(), p.Ledger().LastHash(), []blockstore.Envelope{env})
	if err != nil {
		return err
	}
	p.CommitBlock(b)
	return nil
}

// inspect reports the externally observable ledger view: height, record
// count by rich query, and one record's version history length.
func (h *recoverHarness) inspect(p *peer.Peer, key string) (string, error) {
	query := []byte(`{"selector":{"ts":{"$gt":0}}}`)
	qr, err := p.Query(provenance.ChaincodeName, provenance.FnRichQuery,
		[][]byte{query}, h.client.Serialize())
	if err != nil {
		return "", err
	}
	var page provenance.QueryPage
	if err := json.Unmarshal(qr.Payload, &page); err != nil {
		return "", err
	}
	hr, err := p.Query(provenance.ChaincodeName, provenance.FnGetHistory,
		[][]byte{[]byte(key)}, h.client.Serialize())
	if err != nil {
		return "", err
	}
	var versions []json.RawMessage
	if err := json.Unmarshal(hr.Payload, &versions); err != nil {
		return "", err
	}
	return fmt.Sprintf("height=%d records(indexed query)=%d versions(%s)=%d",
		p.Height(), len(page.Records), key, len(versions)), nil
}

// runRecover is the durable-storage walkthrough: commit, crash, reopen,
// verify, continue.
func runRecover(dir string, blocks int) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "hyperprov-peer-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	h, err := newRecoverHarness()
	if err != nil {
		return err
	}

	fmt.Printf("opening durable peer in %s (checkpoint every 4 blocks, fsync per append)\n", dir)
	p, err := h.open(dir)
	if err != nil {
		return err
	}
	for i := 0; i < blocks; i++ {
		key := fmt.Sprintf("sensor-%d", i%3) // few records, many versions
		if err := h.commitRecord(p, key, fmt.Sprintf("sha256:%04d", i)); err != nil {
			p.Close()
			return err
		}
	}
	before, err := h.inspect(p, "sensor-0")
	if err != nil {
		p.Close()
		return err
	}
	fmt.Printf("committed %d blocks: %s\n", blocks, before)

	fmt.Println("\n-- simulated power loss (no clean shutdown, no final checkpoint) --")
	p.Crash()

	p2, err := h.open(dir)
	if err != nil {
		return err
	}
	info := p2.Recovery()
	fmt.Printf("reopened: restored checkpoint at height %d, replayed %d tail block(s)\n",
		info.CheckpointHeight, info.ReplayedBlocks)
	after, err := h.inspect(p2, "sensor-0")
	if err != nil {
		p2.Close()
		return err
	}
	fmt.Printf("recovered ledger view: %s\n", after)
	if after == before {
		fmt.Println("recovered view MATCHES the pre-crash view")
	} else {
		fmt.Println("WARNING: recovered view differs from pre-crash view")
	}
	if err := p2.Ledger().VerifyChain(); err != nil {
		p2.Close()
		return fmt.Errorf("chain audit after recovery: %w", err)
	}
	fmt.Println("hash-chain audit after recovery: OK")

	// Life goes on: the recovered peer keeps committing.
	if err := h.commitRecord(p2, "sensor-0", "sha256:post-crash"); err != nil {
		p2.Close()
		return err
	}
	fmt.Printf("committed 1 more block after recovery, height now %d\n", p2.Height())
	if err := p2.Close(); err != nil {
		return err
	}
	fmt.Println("clean shutdown: final checkpoint written; next open replays nothing")
	return nil
}
