package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/hyperprov/hyperprov/internal/blockstore"
)

// runMigrateLedger converts every block file under a peer data directory to
// the v2 binary record format, in place. Each file is verified, rewritten to
// a temp file, fsynced, and renamed over the original, so a crash at any
// point leaves either the old ledger or the new one — never a mix. Files
// already in v2 (or empty) are left untouched and reported as skipped.
func runMigrateLedger(dir string) error {
	if dir == "" {
		return fmt.Errorf("migrate-ledger: -dir is required")
	}
	paths, err := findBlockFiles(dir)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("migrate-ledger: no block files under %s", dir)
	}
	var converted, skipped int
	for _, path := range paths {
		migrated, err := blockstore.MigrateFileToV2(path)
		if err != nil {
			return fmt.Errorf("migrate-ledger: %s: %w", path, err)
		}
		if migrated {
			converted++
			fmt.Printf("migrated %s -> v2\n", path)
		} else {
			skipped++
			fmt.Printf("skipped  %s (already v2 or empty)\n", path)
		}
	}
	fmt.Printf("done: %d migrated, %d already current\n", converted, skipped)
	return nil
}

// findBlockFiles returns every ledger file in the peer data directory: the
// legacy single-channel blocks.jsonl plus per-channel blocks-<ch>.jsonl.
func findBlockFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("migrate-ledger: read %s: %w", dir, err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if name == "blocks.jsonl" ||
			(filepath.Ext(name) == ".jsonl" && len(name) > len("blocks-.jsonl") && name[:len("blocks-")] == "blocks-") {
			paths = append(paths, filepath.Join(dir, name))
		}
	}
	sort.Strings(paths)
	return paths, nil
}
