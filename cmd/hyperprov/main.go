// Command hyperprov runs an end-to-end HyperProv walkthrough on an
// in-process network: it stores data items with provenance, updates them,
// traces lineage, demonstrates tamper detection, and audits the ledger's
// hash chain. Use -rpi to run on the Raspberry Pi device profiles.
//
// The query subcommand instead exercises the rich-query subsystem: it
// populates the store with typed records and runs indexed provenance
// queries (by owner, by type, by time window, and a raw Mango selector)
// through the gateway:
//
// The recover subcommand demonstrates durable peer storage: it commits
// provenance records on a peer rooted in a data directory, kills the peer
// mid-stream, reopens it from disk (checkpoint restore + block tail
// replay), and shows that state, history, and rich-query indexes came back
// to the exact pre-crash fingerprint:
//
// The migrate-ledger subcommand converts a peer data directory's block
// files from the legacy JSONL format to the v2 binary record format, in
// place and atomically (temp file + fsync + rename per ledger):
//
//	hyperprov [-rpi] [-items N] [-payload BYTES]
//	hyperprov query [-selector JSON]
//	hyperprov recover [-dir PATH] [-blocks N]
//	hyperprov migrate-ledger -dir PATH
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hyperprov/hyperprov/internal/chaincode/provenance"
	"github.com/hyperprov/hyperprov/internal/core"
	"github.com/hyperprov/hyperprov/internal/fabric"
	"github.com/hyperprov/hyperprov/internal/offchain"
	"github.com/hyperprov/hyperprov/internal/orderer"
	"github.com/hyperprov/hyperprov/internal/shim"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "query" {
		fs := flag.NewFlagSet("query", flag.ExitOnError)
		selector := fs.String("selector",
			`{"selector":{"meta.type":"aggregate"},"sort":[{"ts":"desc"}]}`,
			"raw Mango query to run after the built-in queries")
		_ = fs.Parse(os.Args[2:])
		if err := runQuery(*selector); err != nil {
			fmt.Fprintln(os.Stderr, "hyperprov query:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "recover" {
		fs := flag.NewFlagSet("recover", flag.ExitOnError)
		dir := fs.String("dir", "", "peer data directory (default: a fresh temp dir)")
		blocks := fs.Int("blocks", 14, "blocks to commit before the simulated crash")
		_ = fs.Parse(os.Args[2:])
		if err := runRecover(*dir, *blocks); err != nil {
			fmt.Fprintln(os.Stderr, "hyperprov recover:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "migrate-ledger" {
		fs := flag.NewFlagSet("migrate-ledger", flag.ExitOnError)
		dir := fs.String("dir", "", "peer data directory holding the block files")
		_ = fs.Parse(os.Args[2:])
		if err := runMigrateLedger(*dir); err != nil {
			fmt.Fprintln(os.Stderr, "hyperprov migrate-ledger:", err)
			os.Exit(1)
		}
		return
	}
	rpi := flag.Bool("rpi", false, "use Raspberry Pi 3B+ device profiles")
	items := flag.Int("items", 3, "number of data items to store")
	payload := flag.Int("payload", 4096, "payload size in bytes per item")
	flag.Parse()
	if err := run(*rpi, *items, *payload); err != nil {
		fmt.Fprintln(os.Stderr, "hyperprov:", err)
		os.Exit(1)
	}
}

// runQuery demonstrates the rich-query subsystem end to end: records land
// through the normal execute-order-validate pipeline, the peers maintain
// the chaincode's declared indexes at commit, and every query below is
// served by the state database's Mango engine through the gateway.
func runQuery(rawQuery string) error {
	cfg := fabric.DesktopConfig()
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 10, BatchTimeout: 200 * time.Millisecond, PreferredMaxBytes: 8 << 20,
	}
	fmt.Println("starting HyperProv network with indexed state database")
	n, err := fabric.NewNetwork(cfg)
	if err != nil {
		return err
	}
	defer n.Stop()
	if err := n.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		return err
	}
	gw, err := n.NewGateway("cli")
	if err != nil {
		return err
	}
	client, err := core.New(gw, core.WithStore(offchain.NewMemStore()))
	if err != nil {
		return err
	}

	// Populate: sensors produce raw readings, a pipeline derives aggregates.
	types := []string{"raw", "raw", "raw", "aggregate", "aggregate"}
	start := time.Now().UTC()
	for i, typ := range types {
		key := fmt.Sprintf("reading-%d", i)
		data := []byte(fmt.Sprintf("measurement %d", i))
		opts := core.PostOptions{Meta: map[string]string{"type": typ, "sensor": fmt.Sprintf("s%d", i%2)}}
		if typ == "aggregate" {
			opts.Parents = []string{"reading-0"}
		}
		if _, err := client.StoreData(key, data, opts); err != nil {
			return fmt.Errorf("store %s: %w", key, err)
		}
	}
	fmt.Printf("stored %d records as %s\n\n", len(types), client.Subject())

	// Indexed query 1: everything this identity owns (by-owner index).
	mine, err := client.GetMine()
	if err != nil {
		return err
	}
	fmt.Printf("records by owner (by-owner index): %d\n", len(mine))

	// Indexed query 2: records by type (by-type index).
	raws, err := client.GetByType("raw")
	if err != nil {
		return err
	}
	fmt.Printf("records with meta.type=raw (by-type index): %d\n", len(raws))
	for _, r := range raws {
		fmt.Printf("  %-10s sensor=%s ts=%s\n", r.Key, r.Meta["sensor"], r.Timestamp.Format(time.RFC3339))
	}

	// Indexed query 3: time window (by-time index).
	windowed, err := client.GetByTimeRange(start.Add(-time.Minute), start.Add(time.Hour))
	if err != nil {
		return err
	}
	fmt.Printf("records in the last-hour window (by-time index): %d\n", len(windowed))

	// Raw Mango selector through the same engine.
	page, err := client.RichQuery(rawQuery)
	if err != nil {
		return err
	}
	fmt.Printf("\nrich query %s\n-> %d records\n", rawQuery, len(page.Records))
	for _, r := range page.Records {
		fmt.Printf("  %-10s type=%s parents=%v\n", r.Key, r.Meta["type"], r.Parents)
	}
	return nil
}

func run(rpi bool, items, payload int) error {
	cfg := fabric.DesktopConfig()
	label := "desktop (2x Xeon E5-1603, i7-4700MQ, i3-2310M)"
	if rpi {
		cfg = fabric.RPiConfig()
		label = "4x Raspberry Pi 3B+"
	}
	cfg.Batch = orderer.BatchConfig{
		MaxMessageCount: 5, BatchTimeout: 500 * time.Millisecond, PreferredMaxBytes: 8 << 20,
	}
	fmt.Printf("starting HyperProv network: %s, solo orderer\n", label)
	n, err := fabric.NewNetwork(cfg)
	if err != nil {
		return err
	}
	defer n.Stop()
	if err := n.DeployChaincode(provenance.ChaincodeName,
		func() shim.Chaincode { return provenance.New() }); err != nil {
		return err
	}
	gw, err := n.NewGateway("cli")
	if err != nil {
		return err
	}
	store := offchain.NewMemStore()
	client, err := core.New(gw, core.WithStore(store))
	if err != nil {
		return err
	}
	fmt.Printf("client identity: %s\n\n", client.Subject())

	// Store a chain of derived items.
	var prev string
	for i := 0; i < items; i++ {
		key := fmt.Sprintf("item-%d", i)
		data := make([]byte, payload)
		for j := range data {
			data[j] = byte(i + j)
		}
		opts := core.PostOptions{Meta: map[string]string{"step": fmt.Sprint(i)}}
		if prev != "" {
			opts.Parents = []string{prev}
		}
		receipt, err := client.StoreData(key, data, opts)
		if err != nil {
			return fmt.Errorf("store %s: %w", key, err)
		}
		fmt.Printf("stored %-8s tx=%s..  block=%d  latency=%v\n",
			key, receipt.TxID[:12], receipt.BlockNum, receipt.Latency.Truncate(time.Millisecond))
		prev = key
	}

	// Trace lineage of the final item.
	last := fmt.Sprintf("item-%d", items-1)
	lineage, err := client.GetLineage(last)
	if err != nil {
		return err
	}
	fmt.Printf("\nlineage of %s (%d records):\n", last, len(lineage))
	for _, rec := range lineage {
		fmt.Printf("  %-8s checksum=%s.. parents=%v\n", rec.Key, rec.Checksum[7:19], rec.Parents)
	}

	// Tamper with the off-chain copy and show detection.
	rec, err := client.Get("item-0")
	if err != nil {
		return err
	}
	if err := store.Corrupt(rec.Location); err != nil {
		return err
	}
	if _, _, err := client.GetData("item-0"); err != nil {
		fmt.Printf("\ntamper check: off-chain copy of item-0 corrupted -> %v\n", err)
	} else {
		return fmt.Errorf("tampering went undetected")
	}

	// Audit every peer's hash chain.
	if err := client.VerifyLedger(); err != nil {
		return err
	}
	stats, err := client.GetStats()
	if err != nil {
		return err
	}
	fmt.Printf("ledger audit: all %d peers verify; %d provenance records on-chain\n",
		len(n.Peers()), stats.Records)

	fmt.Printf("\norderer counters:\n%s", n.Orderer().Metrics().Format())
	fmt.Printf("peer0 counters:\n%s", n.Peers()[0].Metrics().Format())
	return nil
}
