package hyperprov

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/hyperprov/hyperprov/tools/analyzers/analysis"
)

// pkgSegments splits a package path into its segments, normalizing the
// go command's test-variant spellings ("pkg.test", "pkg_test") back onto
// the package they test so scoping rules apply to test packages too.
func pkgSegments(path string) []string {
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return strings.Split(path, "/")
}

// inScope reports whether the package path contains any of the named
// segments — how each analyzer limits itself to the packages whose
// invariant it enforces (e.g. "offchain" matches both
// github.com/hyperprov/hyperprov/internal/offchain and an analysistest
// fixture path like atomicwrite/offchain).
func inScope(path string, segments ...string) bool {
	for _, got := range pkgSegments(path) {
		for _, want := range segments {
			if got == want {
				return true
			}
		}
	}
	return false
}

// isTestFile reports whether the file holding pos is a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// allowPrefix is the line-level suppression directive: a comment
//
//	//hyperprov:allow <name>[,<name>...] <reason>
//
// on the flagged line, or alone on the line directly above it, suppresses
// the named analyzers' diagnostics for that line. The reason is free text
// but should say why the invariant legitimately does not apply.
const allowPrefix = "hyperprov:allow"

// compatPrefix designates a _test.go file as a compatibility test that may
// exercise deprecated shims: a comment anywhere in the file reading
//
//	//hyperprov:compat <reason>
//
// exempts the whole file from the nodeprecated analyzer. It has no effect
// outside _test.go files.
const compatPrefix = "hyperprov:compat"

// allowIndex records, per file and line, which analyzers are suppressed.
type allowIndex struct {
	fset  *token.FileSet
	lines map[string]map[int][]string // filename -> line -> analyzer names
}

// newAllowIndex scans every comment in the pass for allow directives.
func newAllowIndex(pass *analysis.Pass) *allowIndex {
	idx := &allowIndex{fset: pass.Fset, lines: make(map[string]map[int][]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) == 0 {
					continue
				}
				names := strings.Split(fields[0], ",")
				posn := pass.Fset.Position(c.Pos())
				byLine := idx.lines[posn.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					idx.lines[posn.Filename] = byLine
				}
				byLine[posn.Line] = append(byLine[posn.Line], names...)
			}
		}
	}
	return idx
}

// allowed reports whether analyzer name is suppressed at pos (directive on
// the same line or the line immediately above).
func (idx *allowIndex) allowed(name string, pos token.Pos) bool {
	posn := idx.fset.Position(pos)
	byLine := idx.lines[posn.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, n := range byLine[line] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// isCompatFile reports whether f carries a //hyperprov:compat designation.
func isCompatFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, compatPrefix) {
				return true
			}
		}
	}
	return false
}

// calleeFunc resolves the called function or method of call, following
// identifiers and selectors through the type info. It returns nil for
// calls of function-typed variables, conversions, and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function name declared
// in a package whose path ends with pkgSeg (e.g. ("os", "WriteFile")).
func isPkgFunc(fn *types.Func, pkgSeg, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	segs := pkgSegments(fn.Pkg().Path())
	return len(segs) > 0 && segs[len(segs)-1] == pkgSeg
}

// namedType unwraps pointers and aliases to the named type of t, or nil.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// typeName declared in a package whose path ends with pkgSeg.
func isNamed(t types.Type, pkgSeg, typeName string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Name() != typeName || n.Obj().Pkg() == nil {
		return false
	}
	segs := pkgSegments(n.Obj().Pkg().Path())
	return len(segs) > 0 && segs[len(segs)-1] == pkgSeg
}

// methodOn reports whether call invokes a method with one of the given
// names on the named type typeName from a package ending in pkgSeg,
// returning the method name and true.
func methodOn(info *types.Info, call *ast.CallExpr, pkgSeg, typeName string, names ...string) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isNamed(recv.Type(), pkgSeg, typeName) {
		return "", false
	}
	for _, n := range names {
		if fn.Name() == n {
			return n, true
		}
	}
	return "", false
}
