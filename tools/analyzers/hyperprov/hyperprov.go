// Package hyperprov holds the repo's domain-specific analyzers. Each one
// machine-checks an invariant that an earlier PR established and that
// review alone kept re-litigating:
//
//	atomicwrite   durable files are published temp+fsync+rename+dir-fsync (PR 3)
//	errcodes      cross-process errors are classified structurally, never by
//	              error-string matching (PR 4's RemoteStore bug class)
//	nodeprecated  the single-channel shims stay quarantined to compat tests (PR 8)
//	locksafe      striped locks are never held across blocking operations (PR 5/7)
//	metricnames   metric families are compile-time constant snake_case names (PR 6/8)
//	walltime      the commit/MVCC decision path stays deterministic: wall-clock
//	              reads only through the metrics seam (PR 7)
//
// Suppression: a `//hyperprov:allow <name> <reason>` comment on the flagged
// line (or alone on the line above) silences one line; a
// `//hyperprov:compat <reason>` comment designates a _test.go file as a
// compatibility test exempt from nodeprecated.
package hyperprov

import "github.com/hyperprov/hyperprov/tools/analyzers/analysis"

// All returns every hyperprov analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AtomicWrite,
		ErrCodes,
		NoDeprecated,
		LockSafe,
		MetricNames,
		WallTime,
	}
}
