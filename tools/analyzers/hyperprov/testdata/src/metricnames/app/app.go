// Package app exercises the metricnames analyzer: family names must be
// compile-time constant snake_case strings.
package app

import (
	"fmt"

	"metricnames/metrics"
)

const txCommitted = "tx_committed"

func good(reg *metrics.Registry) {
	reg.Counter(txCommitted).Inc()
	reg.Gauge("queue_depth").Set(1)
	reg.Histogram(txCommitted + "_latency").Observe(0.5)
}

func bad(reg *metrics.Registry, op string) {
	reg.Counter("rpc_" + op).Inc()                      // want "metric family name passed to Registry.Counter is not a compile-time constant"
	reg.Histogram(fmt.Sprintf("rpc_%s", op)).Observe(1) // want "metric family name passed to Registry.Histogram is not a compile-time constant"
	reg.Gauge("queueDepth").Set(2)                      // want `metric family name "queueDepth" is not snake_case`
	reg.Counter("2fast").Inc()                          // want `metric family name "2fast" is not snake_case`
}

func sanctioned(reg *metrics.Registry, name string) {
	//hyperprov:allow metricnames fixture forwards a constant name
	reg.Counter(name).Inc()
}
