// Package metrics is a fixture stand-in for the real registry; the
// analyzer exempts the declaring package (it handles names as values).
package metrics

// Registry is the fixture metric registry.
type Registry struct{}

// Counter returns a counter handle for name.
func (r *Registry) Counter(name string) *Counter { return &Counter{name: name} }

// Gauge returns a gauge handle for name.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{name: name} }

// Histogram returns a histogram handle for name.
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{name: name} }

// Counter counts.
type Counter struct{ name string }

// Inc bumps the counter.
func (c *Counter) Inc() {}

// Gauge holds a level.
type Gauge struct{ name string }

// Set sets the level.
func (g *Gauge) Set(v float64) {}

// Histogram accumulates observations.
type Histogram struct{ name string }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {}

// internal lookup: the registry itself may treat names dynamically.
func (r *Registry) lookup(name string) *Counter {
	return r.Counter(name + "_total")
}
