// Package a exercises the errcodes analyzer: error-string matching is
// flagged everywhere outside test files.
package a

import (
	"errors"
	"fmt"
	"strings"
)

var errSentinel = errors.New("a: sentinel")

func bad(err error) bool {
	if strings.Contains(err.Error(), "not found") { // want "matching on an error's message with strings.Contains"
		return true
	}
	if strings.HasPrefix(fmt.Sprintf("op: %v", err), "op: timeout") { // want "matching on an error's message with strings.HasPrefix"
		return true
	}
	if err.Error() == "boom" { // want "comparing an error's message text with =="
		return true
	}
	return err.Error() != "calm" // want "comparing an error's message text with !="
}

func good(err error) bool {
	if errors.Is(err, errSentinel) {
		return true
	}
	// Matching over ordinary strings is not error matching.
	return strings.Contains("haystack", "needle")
}

func sanctioned(err error) bool {
	//hyperprov:allow errcodes fixture exercises the suppression path
	return strings.Contains(err.Error(), "legacy wire text")
}
