package a

import "strings"

// Tests may assert on message text; the analyzer skips _test.go files.
func assertMessage(err error) bool {
	return strings.Contains(err.Error(), "exact wording")
}
