//hyperprov:compat designated compatibility test: proves the shims still work

package use

import (
	"nodeprecated/core"
	"nodeprecated/peer"
)

// A designated compat test may exercise the deprecated shims freely.
func compatPath() string {
	_ = core.NewClient("legacy")
	return peer.New(peer.Config{ChannelID: "ch"})
}
