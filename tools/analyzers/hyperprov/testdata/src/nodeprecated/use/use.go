// Package use is an outside caller: every shim use is flagged.
package use

import (
	"nodeprecated/core"
	"nodeprecated/fabric"
	"nodeprecated/peer"
)

func bad() {
	_ = core.NewClient("legacy") // want "core.NewClient is a deprecated single-channel shim"
	cfg := peer.Config{
		Name:      "peer0",
		ChannelID: "ch", // want "peer.Config.ChannelID is a deprecated single-channel shim"
	}
	cfg.ChannelID = "ch2"              // want "peer.Config.ChannelID is a deprecated single-channel shim"
	_ = fabric.Config{ChannelID: "ch"} // want "fabric.Config.ChannelID is a deprecated single-channel shim"
	_ = peer.New(cfg)
}

func good() {
	cfg := peer.Config{Name: "peer0", Channels: []string{"ch"}}
	_ = fabric.Config{Channels: []string{"ch"}}
	_ = peer.New(cfg)
}

func sanctioned() {
	//hyperprov:allow nodeprecated fixture exercises the suppression path
	_ = core.NewClient("legacy")
}
