package use

import "nodeprecated/peer"

// An ordinary test file without the compat designation is still flagged.
func plainTestPath() string {
	return peer.New(peer.Config{ChannelID: "ch"}) // want "peer.Config.ChannelID is a deprecated single-channel shim"
}
