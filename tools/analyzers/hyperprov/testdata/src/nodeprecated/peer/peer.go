// Package peer declares the Config whose ChannelID field is a deprecated
// single-channel shim; Channels is the replacement.
package peer

// Config configures a fixture peer.
type Config struct {
	Name string
	// ChannelID is the deprecated single-channel shim.
	ChannelID string
	// Channels is the multi-channel replacement.
	Channels []string
}

// New consumes the config; the declaring package reads the shim legally.
func New(cfg Config) string {
	if len(cfg.Channels) > 0 {
		return cfg.Channels[0]
	}
	return cfg.ChannelID
}
