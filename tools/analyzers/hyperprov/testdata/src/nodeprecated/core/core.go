// Package core declares the deprecated NewClient shim; the declaring
// package itself is exempt from the nodeprecated analyzer.
package core

// Client is a stand-in for the legacy single-channel client.
type Client struct {
	channel string
}

// NewClient is the deprecated single-channel constructor.
func NewClient(channel string) *Client {
	return newClient(channel)
}

func newClient(channel string) *Client {
	return &Client{channel: channel}
}

// self proves the declaring package may keep calling its own shim.
func self() *Client {
	return NewClient("legacy")
}
