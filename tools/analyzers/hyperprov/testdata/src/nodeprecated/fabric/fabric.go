// Package fabric declares a Config with the deprecated ChannelID shim.
package fabric

// Config configures a fixture network.
type Config struct {
	// ChannelID is the deprecated single-channel shim.
	ChannelID string
	// Channels is the multi-channel replacement.
	Channels []string
}
