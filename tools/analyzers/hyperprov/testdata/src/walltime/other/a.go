// Package other is out of scope: wall-clock reads are legal here.
package other

import "time"

func fine() time.Time {
	return time.Now()
}
