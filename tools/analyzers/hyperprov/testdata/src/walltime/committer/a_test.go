package committer

import "time"

// Tests may time themselves; the analyzer skips _test.go files.
func stopwatch() time.Time {
	return time.Now()
}
