// Package committer is an in-scope fixture for the walltime analyzer:
// the deterministic commit path must not read the wall clock.
package committer

import "time"

func bad(deadline time.Time) time.Duration {
	start := time.Now()      // want "time.Now in the deterministic commit/MVCC path"
	_ = time.Until(deadline) // want "time.Until in the deterministic commit/MVCC path"
	return time.Since(start) // want "time.Since in the deterministic commit/MVCC path"
}

func good() time.Duration {
	// Constructing durations and times without reading the clock is fine.
	t := time.Unix(0, 0)
	return t.Sub(time.Unix(0, 0)) + time.Millisecond
}

func seam() time.Time {
	//hyperprov:allow walltime fixture mirrors the metrics stopwatch seam
	return time.Now()
}
