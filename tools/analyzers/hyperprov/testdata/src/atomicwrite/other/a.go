// Package other is out of scope: direct writes are legal here.
package other

import "os"

func fine(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
