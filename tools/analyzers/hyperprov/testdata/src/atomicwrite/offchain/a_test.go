package offchain

import "os"

// Test files may write torn fixtures on purpose; the analyzer skips them.
func writeTornFixture(path string) error {
	return os.WriteFile(path, []byte("torn"), 0o644)
}
