// Package offchain is an in-scope fixture: its import path ends in a
// durable-file package segment, so direct writes are flagged.
package offchain

import "os"

func bad(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want "os.WriteFile bypasses the temp\\+rename\\+dir-fsync discipline"
		return err
	}
	f, err := os.Create(path) // want "os.Create bypasses the temp\\+rename\\+dir-fsync discipline"
	if err != nil {
		return err
	}
	return f.Close()
}

func good(dir string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".obj-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), dir+"/obj"); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	f, err := os.OpenFile(dir+"/append.log", os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

func sanctioned(path string, data []byte) error {
	//hyperprov:allow atomicwrite fixture exercises the suppression path
	return os.WriteFile(path, data, 0o644)
}
