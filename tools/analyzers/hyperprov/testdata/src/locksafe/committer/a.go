// Package committer is an in-scope fixture for the locksafe analyzer:
// striped locks must not be held across blocking operations.
package committer

import (
	"net"
	"sync"
	"time"
)

type queue struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

func (q *queue) badSend(v int) {
	q.mu.Lock()
	q.ch <- v // want "channel send while holding q.mu"
	q.mu.Unlock()
}

func (q *queue) badReceive() int {
	q.mu.Lock()
	v := <-q.ch // want "channel receive while holding q.mu"
	q.mu.Unlock()
	return v
}

func (q *queue) badSleep() {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding q.mu"
}

func (q *queue) badWait() {
	q.mu.Lock()
	q.wg.Wait() // want "sync.WaitGroup.Wait while holding q.mu"
	q.mu.Unlock()
}

func (q *queue) badDial(addr string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, _ = net.Dial("tcp", addr) // want "net.Dial while holding q.mu"
}

func (q *queue) goodReleaseFirst(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v
}

func (q *queue) goodClosure(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	// The closure runs later, not under the lock.
	go func() {
		q.ch <- v
	}()
}

func (q *queue) sanctioned(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//hyperprov:allow locksafe fixture exercises the suppression path
	q.ch <- v
}

type rw struct {
	mu sync.RWMutex
	ch chan int
}

func (r *rw) badRLock() int {
	r.mu.RLock()
	v := <-r.ch // want "channel receive while holding r.mu"
	r.mu.RUnlock()
	return v
}
