// Package other is out of scope for locksafe: holding a lock across a
// channel send is legal here (no striping contract).
package other

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) fine(v int) {
	b.mu.Lock()
	b.ch <- v
	b.mu.Unlock()
}
