package hyperprov_test

import (
	"testing"

	"github.com/hyperprov/hyperprov/tools/analyzers/analysis/analysistest"
	"github.com/hyperprov/hyperprov/tools/analyzers/hyperprov"
)

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hyperprov.AtomicWrite,
		"atomicwrite/offchain", "atomicwrite/other")
}

func TestErrCodes(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hyperprov.ErrCodes,
		"errcodes/a")
}

func TestNoDeprecated(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hyperprov.NoDeprecated,
		"nodeprecated/use", "nodeprecated/core", "nodeprecated/peer", "nodeprecated/fabric")
}

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hyperprov.LockSafe,
		"locksafe/committer", "locksafe/other")
}

func TestMetricNames(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hyperprov.MetricNames,
		"metricnames/app", "metricnames/metrics")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hyperprov.WallTime,
		"walltime/committer", "walltime/other")
}
