package hyperprov_test

import (
	"testing"

	"github.com/hyperprov/hyperprov/tools/analyzers/analysis"
	"github.com/hyperprov/hyperprov/tools/analyzers/analysis/analysistest"
	"github.com/hyperprov/hyperprov/tools/analyzers/hyperprov"
)

// violationFixture maps each analyzer to a fixture package seeded with
// known violations of its invariant.
var violationFixture = map[string]string{
	"atomicwrite":  "atomicwrite/offchain",
	"errcodes":     "errcodes/a",
	"nodeprecated": "nodeprecated/use",
	"locksafe":     "locksafe/committer",
	"metricnames":  "metricnames/app",
	"walltime":     "walltime/committer",
}

// TestSuiteNotMuted is the analog of the bench-regression guard in
// bench_compare_test.go: if an analyzer is accidentally muted — a scoping
// rule that no longer matches, a suppression index gone greedy, a Run
// function short-circuited — its injected-violation fixture yields zero
// diagnostics and this test fails CI, independent of the // want
// annotations (which a muted analyzer would trivially "satisfy" by
// reporting nothing... except that analysistest.Run also fails on
// unmatched expectations; this guard protects against both being edited
// away together).
func TestSuiteNotMuted(t *testing.T) {
	all := hyperprov.All()
	if len(all) != len(violationFixture) {
		t.Fatalf("suite has %d analyzers, self-test knows %d: update violationFixture",
			len(all), len(violationFixture))
	}
	for _, a := range all {
		fixture, ok := violationFixture[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no violation fixture: every analyzer needs one", a.Name)
			continue
		}
		pkg, err := analysistest.Load(analysistest.TestData(), fixture)
		if err != nil {
			t.Errorf("%s: load %s: %v", a.Name, fixture, err)
			continue
		}
		findings, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: run over %s: %v", a.Name, fixture, err)
			continue
		}
		if len(findings) == 0 {
			t.Errorf("analyzer %s reported zero diagnostics over violation fixture %s: "+
				"the analyzer is muted", a.Name, fixture)
		}
	}
}
