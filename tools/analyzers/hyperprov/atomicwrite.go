package hyperprov

import (
	"go/ast"

	"github.com/hyperprov/hyperprov/tools/analyzers/analysis"
)

// AtomicWrite enforces the durability discipline PR 3 established: in the
// packages that own durable files (blockstore, recovery, offchain),
// publishing a file must go through temp-file + fsync + rename + directory
// fsync, never a direct os.WriteFile or os.Create that can leave a torn
// file behind a valid name after a crash. os.CreateTemp and os.OpenFile
// remain legal: the former is the sanctioned first step of the atomic
// pattern, the latter is how the append-only block file opens.
var AtomicWrite = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "flag direct os.WriteFile/os.Create in durable-file packages " +
		"(blockstore, recovery, offchain); durable files must be published " +
		"via temp+fsync+rename+dir-fsync",
	Run: runAtomicWrite,
}

func runAtomicWrite(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), "blockstore", "recovery", "offchain") {
		return nil
	}
	allow := newAllowIndex(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue // tests write torn fixtures on purpose
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			for _, name := range []string{"WriteFile", "Create"} {
				if isPkgFunc(fn, "os", name) {
					if allow.allowed(pass.Analyzer.Name, call.Pos()) {
						return true
					}
					pass.Reportf(call.Pos(),
						"os.%s bypasses the temp+rename+dir-fsync discipline for durable files; "+
							"write to an os.CreateTemp file, fsync, rename into place, and fsync the directory",
						name)
				}
			}
			return true
		})
	}
	return nil
}
