package hyperprov

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/hyperprov/hyperprov/tools/analyzers/analysis"
)

// LockSafe enforces the lock-striping discipline PR 5 and PR 7 depend on:
// in the lock-striped packages (statedb, historydb, committer), a
// sync.Mutex/RWMutex must never be held across a blocking operation — a
// channel send/receive/select, time.Sleep, a sync.WaitGroup.Wait, or
// network I/O — because one stalled stripe holder would serialize every
// other goroutine hashing onto that stripe.
//
// The check is an intra-function, source-order heuristic: between x.Lock()
// and the textually matching x.Unlock() (same receiver expression), any
// blocking operation is flagged; `defer x.Unlock()` marks the lock held to
// the end of the function. Function literals are analyzed as their own
// scope (a closure defined under a lock runs later, not under it).
var LockSafe = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "flag sync.Mutex/RWMutex held across channel operations, " +
		"time.Sleep, WaitGroup.Wait, or net I/O in the lock-striped " +
		"packages (statedb, historydb, committer)",
	Run: runLockSafe,
}

func runLockSafe(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), "statedb", "historydb", "committer") {
		return nil
	}
	allow := newAllowIndex(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue // test helpers synchronize however they like
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockSpans(pass, allow, n.Body)
				}
			case *ast.FuncLit:
				checkLockSpans(pass, allow, n.Body)
			}
			return true
		})
	}
	return nil
}

// lockEvent is one Lock/Unlock call on a receiver, or a deferred Unlock.
type lockEvent struct {
	pos      token.Pos
	delta    int // +1 Lock/RLock, -1 Unlock/RUnlock
	deferred bool
}

// checkLockSpans scans one function body (excluding nested FuncLits) for
// blocking operations that occur while a mutex is held.
func checkLockSpans(pass *analysis.Pass, allow *allowIndex, body *ast.BlockStmt) {
	events := make(map[string][]lockEvent) // receiver expr -> events
	type blockOp struct {
		pos  token.Pos
		what string
	}
	var ops []blockOp

	var walk func(n ast.Node, inDefer bool)
	walk = func(root ast.Node, inDefer bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // separate scope, analyzed on its own
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.SendStmt:
				ops = append(ops, blockOp{n.Pos(), "channel send"})
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					ops = append(ops, blockOp{n.Pos(), "channel receive"})
				}
			case *ast.SelectStmt:
				ops = append(ops, blockOp{n.Pos(), "select"})
				// The select's cases contain the channel ops already counted
				// by this entry; don't double-report, but do descend into the
				// case bodies for locks and further ops.
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						ops = append(ops, blockOp{n.Pos(), "range over channel"})
					}
				}
			case *ast.CallExpr:
				if recv, name, ok := mutexCall(pass.TypesInfo, n); ok {
					ev := lockEvent{pos: n.Pos()}
					switch name {
					case "Lock", "RLock":
						ev.delta = +1
					case "Unlock", "RUnlock":
						ev.delta = -1
						ev.deferred = inDefer
					}
					events[recv] = append(events[recv], ev)
					return true
				}
				if what, ok := blockingCall(pass.TypesInfo, n); ok {
					ops = append(ops, blockOp{n.Pos(), what})
				}
			}
			return true
		})
	}
	walk(body, false)

	if len(ops) == 0 {
		return
	}
	for recv, evs := range events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		for _, op := range ops {
			held := 0
			for _, ev := range evs {
				if ev.pos >= op.pos {
					break
				}
				if ev.deferred {
					continue // releases at function exit, still held at op
				}
				held += ev.delta
				if held < 0 {
					held = 0
				}
			}
			if held > 0 && !allow.allowed(pass.Analyzer.Name, op.pos) {
				pass.Reportf(op.pos,
					"%s while holding %s; striped locks must not be held across blocking operations — "+
						"release the lock first or move the blocking work out of the critical section",
					op.what, recv)
			}
		}
	}
}

// mutexCall reports whether call is Lock/RLock/Unlock/RUnlock on a
// sync.Mutex, sync.RWMutex, or sync.Locker receiver, returning the
// receiver's source text and the method name.
func mutexCall(info *types.Info, call *ast.CallExpr) (recv, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	tv, okT := info.Types[sel.X]
	if !okT {
		return "", "", false
	}
	if !isNamed(tv.Type, "sync", "Mutex") && !isNamed(tv.Type, "sync", "RWMutex") &&
		!isNamed(tv.Type, "sync", "Locker") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// blockingCall classifies calls that block: time.Sleep, WaitGroup.Wait,
// Cond.Wait, and anything from package net (dial, read, write ...).
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	if isPkgFunc(fn, "time", "Sleep") {
		return "time.Sleep", true
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		// sync.Cond.Wait is deliberately absent: waiting on a condition
		// variable requires holding its mutex (Wait releases it internally).
		if fn.Name() == "Wait" && isNamed(recv.Type(), "sync", "WaitGroup") {
			return "sync.WaitGroup.Wait", true
		}
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "net" {
		return "net." + fn.Name(), true
	}
	return "", false
}
