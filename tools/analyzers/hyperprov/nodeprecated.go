package hyperprov

import (
	"go/ast"
	"go/types"

	"github.com/hyperprov/hyperprov/tools/analyzers/analysis"
)

// NoDeprecated quarantines the single-channel compatibility shims PR 8
// superseded: core.NewClient (and its core.Config argument), and the
// ChannelID fields of peer.Config and fabric.Config. The shims stay — old
// data directories must keep opening — but new code must not grow onto
// them. The declaring package itself is exempt (it implements the shim),
// and _test.go files carrying a //hyperprov:compat designation are exempt
// (they exist to prove the shim still works).
var NoDeprecated = &analysis.Analyzer{
	Name: "nodeprecated",
	Doc: "flag use of deprecated single-channel shims (core.NewClient, " +
		"peer.Config.ChannelID, fabric.Config.ChannelID) outside the " +
		"declaring package and designated compat tests",
	Run: runNoDeprecated,
}

// deprecatedFuncs lists banned package-level functions as (pkgSeg, name).
var deprecatedFuncs = [][2]string{
	{"core", "NewClient"},
}

// deprecatedFields lists banned struct fields as (pkgSeg, type, field).
var deprecatedFields = [][3]string{
	{"peer", "Config", "ChannelID"},
	{"fabric", "Config", "ChannelID"},
}

func runNoDeprecated(pass *analysis.Pass) error {
	selfSegs := pkgSegments(pass.Pkg.Path())
	self := selfSegs[len(selfSegs)-1]
	allow := newAllowIndex(pass)
	report := func(pos ast.Node, what string) {
		if !allow.allowed(pass.Analyzer.Name, pos.Pos()) {
			pass.Reportf(pos.Pos(), "%s is a deprecated single-channel shim; use the Channels form", what)
		}
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) && isCompatFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				for _, df := range deprecatedFuncs {
					if df[0] != self && isPkgFunc(fn, df[0], df[1]) {
						report(n, df[0]+"."+df[1])
					}
				}
			case *ast.CompositeLit:
				tv, ok := pass.TypesInfo.Types[n]
				if !ok {
					return true
				}
				for _, df := range deprecatedFields {
					if df[0] == self || !isNamed(tv.Type, df[0], df[1]) {
						continue
					}
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == df[2] {
							report(kv, df[0]+"."+df[1]+"."+df[2])
						}
					}
				}
			case *ast.SelectorExpr:
				// Field access (read or write) outside a composite literal.
				if sel := pass.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
					for _, df := range deprecatedFields {
						if df[0] == self || n.Sel.Name != df[2] {
							continue
						}
						if isNamed(sel.Recv(), df[0], df[1]) {
							report(n, df[0]+"."+df[1]+"."+df[2])
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
