package hyperprov

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/hyperprov/hyperprov/tools/analyzers/analysis"
)

// ErrCodes bans error-string matching in non-test code — the exact bug
// class PR 4 fixed in RemoteStore, where a client matched on a server's
// message text and broke the moment the wording changed. Cross-process
// boundaries carry a structured network.ErrCode; in-process callers use
// errors.Is/errors.As against sentinel errors. The analyzer flags
// strings.Contains/HasPrefix/HasSuffix/EqualFold/Index over err.Error()
// (or fmt.Sprint of an error) and ==/!= comparisons of err.Error() with
// another string.
var ErrCodes = &analysis.Analyzer{
	Name: "errcodes",
	Doc: "flag error-string matching (strings.Contains(err.Error(), ...), " +
		"err.Error() == ...) in non-test code; classify errors with " +
		"errors.Is/errors.As or network.ErrCode",
	Run: runErrCodes,
}

var errCodesMatchers = []string{"Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index"}

func runErrCodes(pass *analysis.Pass) error {
	allow := newAllowIndex(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue // tests may assert on message text
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				for _, name := range errCodesMatchers {
					if !isPkgFunc(fn, "strings", name) {
						continue
					}
					for _, arg := range n.Args {
						if isErrorString(pass.TypesInfo, arg) {
							if !allow.allowed(pass.Analyzer.Name, n.Pos()) {
								pass.Reportf(n.Pos(),
									"matching on an error's message with strings.%s; "+
										"use errors.Is/errors.As against a sentinel, or a structured network.ErrCode",
									name)
							}
							break
						}
					}
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isErrorString(pass.TypesInfo, n.X) || isErrorString(pass.TypesInfo, n.Y) {
					if !allow.allowed(pass.Analyzer.Name, n.Pos()) {
						pass.Reportf(n.Pos(),
							"comparing an error's message text with %s; "+
								"use errors.Is/errors.As against a sentinel, or a structured network.ErrCode",
							n.Op)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isErrorString reports whether e renders an error as a string for
// matching: a call to the Error() method of an error value, or
// fmt.Sprint/Sprintf over at least one error-typed argument.
func isErrorString(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Name() == "Error" {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && isErrorType(tv.Type) {
					return true
				}
			}
		}
	}
	if isPkgFunc(fn, "fmt", "Sprint") || isPkgFunc(fn, "fmt", "Sprintf") {
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && isErrorType(tv.Type) {
				return true
			}
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
