package hyperprov

import (
	"go/ast"
	"go/constant"

	"github.com/hyperprov/hyperprov/tools/analyzers/analysis"
)

// MetricNames keeps metric cardinality bounded: every name passed to
// metrics.Registry.Counter/Gauge/Histogram must be a compile-time constant
// snake_case string. Dynamic names mint a new time series per distinct
// value and explode the scrape; the one sanctioned dynamic dimension is
// the PR 8 {channel="..."} label on WritePrometheusLabeled, which attaches
// a label instead of renaming the family. Pass-through helpers that
// forward a constant name (e.g. transport's count(name)) carry a
// //hyperprov:allow metricnames directive with their justification.
var MetricNames = &analysis.Analyzer{
	Name: "metricnames",
	Doc: "flag non-constant or non-snake_case metric family names passed " +
		"to metrics.Registry.Counter/Gauge/Histogram; the channel label is " +
		"the sanctioned dynamic dimension",
	Run: runMetricNames,
}

func runMetricNames(pass *analysis.Pass) error {
	if inScope(pass.Pkg.Path(), "metrics") {
		return nil // the registry itself necessarily handles names as values
	}
	allow := newAllowIndex(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := methodOn(pass.TypesInfo, call, "metrics", "Registry",
				"Counter", "Gauge", "Histogram")
			if !ok || len(call.Args) != 1 {
				return true
			}
			if allow.allowed(pass.Analyzer.Name, call.Pos()) {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(),
					"metric family name passed to Registry.%s is not a compile-time constant; "+
						"dynamic names explode cardinality — use a constant family name, "+
						"and the {channel=...} label for the per-channel dimension", kind)
				return true
			}
			if name := constant.StringVal(tv.Value); !isSnakeCase(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric family name %q is not snake_case ([a-z0-9_], starting with a letter)", name)
			}
			return true
		})
	}
	return nil
}

// isSnakeCase reports whether name matches ^[a-z][a-z0-9_]*$.
func isSnakeCase(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z':
		case i > 0 && (r == '_' || (r >= '0' && r <= '9')):
		default:
			return false
		}
	}
	return true
}
