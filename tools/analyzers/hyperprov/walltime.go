package hyperprov

import (
	"go/ast"

	"github.com/hyperprov/hyperprov/tools/analyzers/analysis"
)

// WallTime keeps the commit/MVCC decision path deterministic, so
// committer.NewSerial stays a valid replay oracle for the parallel
// pipeline (PR 7's equivalence tests depend on it): in committer and
// rwset, nothing may read the wall clock — validation outcomes must be a
// pure function of the block stream. The only sanctioned reads are the
// stage-stopwatch seam feeding metrics and tracing (committer's clock.go),
// which carries the //hyperprov:allow walltime directive.
var WallTime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "flag time.Now/time.Since/time.Until in the deterministic " +
		"commit/MVCC packages (committer, rwset) outside the metrics seam",
	Run: runWallTime,
}

func runWallTime(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), "committer", "rwset") {
		return nil
	}
	allow := newAllowIndex(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue // tests may time themselves
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			for _, name := range []string{"Now", "Since", "Until"} {
				if isPkgFunc(fn, "time", name) {
					if allow.allowed(pass.Analyzer.Name, call.Pos()) {
						return true
					}
					pass.Reportf(call.Pos(),
						"time.%s in the deterministic commit/MVCC path; validation decisions "+
							"must not read the wall clock — route stopwatch reads through the "+
							"metrics seam (committer's stageStart/stageElapsed)", name)
				}
			}
			return true
		})
	}
	return nil
}
