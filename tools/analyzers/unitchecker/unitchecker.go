// Package unitchecker implements the `go vet -vettool` driver protocol on
// top of the local analysis package — a stdlib-only re-implementation of
// golang.org/x/tools/go/analysis/unitchecker (which the hermetic build
// cannot depend on).
//
// The go command invokes the tool three ways:
//
//   - `tool -V=full`: print an identifying version line (the go command
//     hashes it into its action cache key);
//   - `tool -flags`: print the tool's flag set as JSON (the go command uses
//     it to partition the vet command line);
//   - `tool <dir>/vet.cfg`: analyze one package unit described by the JSON
//     config file, print diagnostics to stderr, and exit 0 (clean), 1
//     (driver failure), or 2 (diagnostics reported).
//
// Facts are not supported: hyperprov's analyzers are all intra-package, so
// the fact file the go command expects (VetxOutput) is always written
// empty, and dependency units (VetxOnly) return immediately.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/hyperprov/hyperprov/tools/analyzers/analysis"
)

// Config mirrors the JSON the go command writes to vet.cfg for each
// package unit. Field names and meanings follow cmd/go/internal/work.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vet tool built from a set of analyzers.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	flag.Var(versionFlag{}, "V", "print version and exit")
	// One boolean flag per analyzer, mirroring upstream vet tools, so
	// `go vet -vettool=... -errcodes ./...` can narrow the run.
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = flag.Bool(a.Name, false, "enable only: "+doc)
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}

	// If any analyzer was explicitly selected, run just those.
	var selected []*analysis.Analyzer
	anySelected := false
	for _, a := range analyzers {
		if *enabled[a.Name] {
			anySelected = true
			selected = append(selected, a)
		}
	}
	if !anySelected {
		selected = analyzers
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoking %s directly is unsupported; use "go vet -vettool=%s"`, progname, progname)
	}
	run(args[0], selected)
}

// versionFlag implements -V=full: the go command hashes the output into
// its cache key, so it must identify this binary's exact contents.
type versionFlag struct{}

func (versionFlag) String() string { return "" }
func (versionFlag) Get() any       { return nil }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	progname, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		os.Args[0], string(h.Sum(nil)[:16]))
	os.Exit(0)
	return nil
}

// printFlags renders the flag set the way `go vet` expects from `-flags`.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(&flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// run analyzes the unit described by cfgFile and exits the process.
func run(cfgFile string, analyzers []*analysis.Analyzer) {
	raw, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(raw, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// The fact file must exist for the go command's cache even though the
	// analyzers produce no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	// Dependency units exist only to produce facts; nothing to do.
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	pkg, tcErr := typecheck(cfg, fset)
	if tcErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the errors; vet stays quiet.
			os.Exit(0)
		}
		log.Fatal(tcErr)
	}

	findings, err := analysis.Run(pkg, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		posn := fset.Position(f.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s\n", posn, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// typecheck parses and type-checks the unit's Go files using the export
// data the go command prepared for each import.
func typecheck(cfg *Config, fset *token.FileSet) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is already canonical (post-ImportMap).
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped // vendoring, test variants
		}
		return compilerImporter.Import(importPath)
	})

	var tcErr error
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if tcErr == nil {
				tcErr = err
			}
		},
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if tcErr != nil {
		return nil, tcErr
	}
	if err != nil {
		return nil, err
	}
	return &analysis.Package{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
