// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface that hyperprov-vet needs. The
// repo builds hermetically (no module downloads), so the real x/tools
// module cannot be a dependency; this package mirrors the Analyzer/Pass/
// Diagnostic shapes closely enough that the analyzers would port to the
// upstream API by changing one import path.
//
// Deliberate divergences from x/tools: no Facts (none of the hyperprov
// analyzers need cross-package state), no Requires/ResultOf dependency
// graph, and no suggested fixes. Diagnostics carry only a position and a
// message.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's short identifier, used in the driver's flag
	// set, in diagnostics, and in //hyperprov:allow suppression comments.
	// It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph help text; its first line is the summary.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Pass carries one typed package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Validate checks the analyzer list for driver use: non-empty unique names.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a == nil || a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %s has no Run function", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// Package bundles one typed package the way drivers hand it to analyzers.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// NewInfo returns a types.Info with every map the analyzers read populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run applies each analyzer to pkg and returns the diagnostics sorted by
// position, each tagged with the analyzer that produced it.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
		}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{Analyzer: a, Diagnostic: d})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		return findings[i].Pos < findings[j].Pos
	})
	return findings, nil
}

// Finding is one diagnostic plus the analyzer that reported it.
type Finding struct {
	Analyzer *Analyzer
	Diagnostic
}
