// Package analysistest runs analyzers over golden-file packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture sources
// under testdata/src/<pkgpath> annotate the lines where diagnostics are
// expected with trailing comments of the form
//
//	// want "regexp"
//
// and the harness fails the test on any diagnostic without a matching
// expectation or expectation without a matching diagnostic. Like the rest
// of tools/analyzers it is dependency-free: fixtures typecheck against the
// standard library via the source importer, and fixture-local imports
// resolve to sibling packages under the same testdata/src root.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/hyperprov/hyperprov/tools/analyzers/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run loads each fixture package (a directory under testdata/src named by
// its import path), applies the analyzer, and checks the diagnostics
// against the // want annotations in the fixture sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(testdata)
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("load %s: %v", path, err)
			continue
		}
		findings, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("run %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, pkg, findings)
	}
}

// Load typechecks one fixture package for callers that inspect diagnostics
// directly (e.g. the suite self-test).
func Load(testdata, pkgPath string) (*analysis.Package, error) {
	return newLoader(testdata).load(pkgPath)
}

// expectation is one // want annotation.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// check matches findings against the fixture's want annotations.
func check(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	expects, err := wantExpectations(pkg)
	if err != nil {
		t.Error(err)
		return
	}
	for _, f := range findings {
		posn := pkg.Fset.Position(f.Pos)
		ok := false
		for _, e := range expects {
			if e.matched || e.file != posn.Filename || e.line != posn.Line {
				continue
			}
			if e.rx.MatchString(f.Message) {
				e.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", posn, f.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
		}
	}
}

// wantExpectations scans fixture comments for // want annotations.
func wantExpectations(pkg *analysis.Package) ([]*expectation, error) {
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				patterns, err := parseWant(strings.TrimPrefix(text, "want "))
				if err != nil {
					return nil, fmt.Errorf("%s: %v", posn, err)
				}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", posn, p, err)
					}
					expects = append(expects, &expectation{
						file: posn.Filename, line: posn.Line, rx: rx, raw: p,
					})
				}
			}
		}
	}
	sort.SliceStable(expects, func(i, j int) bool {
		if expects[i].file != expects[j].file {
			return expects[i].file < expects[j].file
		}
		return expects[i].line < expects[j].line
	})
	return expects, nil
}

// parseWant splits a want annotation body into its quoted regexp strings
// (double-quoted or backquoted, space-separated).
func parseWant(body string) ([]string, error) {
	var patterns []string
	rest := strings.TrimSpace(body)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in want annotation")
			}
			s, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want string %s: %v", rest[:end+1], err)
			}
			patterns = append(patterns, s)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in want annotation")
			}
			patterns = append(patterns, rest[1:1+end])
			rest = strings.TrimSpace(rest[2+end:])
		default:
			return nil, fmt.Errorf("want annotation must hold quoted regexps, got %q", rest)
		}
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("empty want annotation")
	}
	return patterns, nil
}

// loader typechecks fixture packages, resolving fixture-local imports to
// sibling testdata packages and everything else to the standard library.
type loader struct {
	root   string // testdata/src
	fset   *token.FileSet
	cache  map[string]*loaded
	stdlib types.Importer
}

type loaded struct {
	pkg *analysis.Package
	err error
}

func newLoader(testdata string) *loader {
	return &loader{
		root:   filepath.Join(testdata, "src"),
		fset:   token.NewFileSet(),
		cache:  make(map[string]*loaded),
		stdlib: importer.ForCompiler(token.NewFileSet(), "source", nil),
	}
}

// Import implements types.Importer over the fixture tree with a stdlib
// fallback, so fixtures can import both fake sibling packages and real
// standard-library packages.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(ld.root, filepath.FromSlash(path))) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return ld.stdlib.Import(path)
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

// load parses and typechecks the fixture package at pkgPath.
func (ld *loader) load(pkgPath string) (*analysis.Package, error) {
	if got, ok := ld.cache[pkgPath]; ok {
		return got.pkg, got.err
	}
	// Mark in-progress to turn import cycles into load failures rather
	// than infinite recursion.
	ld.cache[pkgPath] = &loaded{err: fmt.Errorf("import cycle through %s", pkgPath)}
	pkg, err := ld.loadUncached(pkgPath)
	ld.cache[pkgPath] = &loaded{pkg: pkg, err: err}
	return pkg, err
}

func (ld *loader) loadUncached(pkgPath string) (*analysis.Package, error) {
	dir := filepath.Join(ld.root, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	cfg := types.Config{Importer: ld}
	tpkg, err := cfg.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgPath, err)
	}
	return &analysis.Package{Fset: ld.fset, Files: files, Pkg: tpkg, TypesInfo: info}, nil
}
