// Command hyperprov-vet is the repo's domain-specific vet tool: a
// multichecker over the six analyzers in the hyperprov package, run from
// `make lint` as
//
//	go vet -vettool=$(pwd)/tools/analyzers/bin/hyperprov-vet ./...
//
// Each analyzer enforces one invariant an earlier PR established the hard
// way; see the README's "Static analysis & enforced invariants" table and
// the per-analyzer Doc strings.
package main

import (
	"github.com/hyperprov/hyperprov/tools/analyzers/hyperprov"
	"github.com/hyperprov/hyperprov/tools/analyzers/unitchecker"
)

func main() {
	unitchecker.Main(hyperprov.All()...)
}
