module github.com/hyperprov/hyperprov/tools/analyzers

go 1.24
